module Alloy = Specrepair_alloy
module Benchmarks = Specrepair_benchmarks
module Repair = Specrepair_repair
module Session = Repair.Session
module Llm = Specrepair_llm
module Metrics = Specrepair_metrics
module Aunit = Specrepair_aunit.Aunit

type spec_result = {
  variant_id : string;
  domain : string;
  benchmark : Benchmarks.Domains.benchmark;
  technique : string;
  rep : int;
  tm : float;
  sm : float;
  tool_claimed : bool;
  time_ms : float;
}

let suite_cache : (string, Aunit.test list) Hashtbl.t = Hashtbl.create 18

(* One incremental oracle per domain, shared by every variant and technique:
   faults mutate only constraint bodies, so all of a domain's variants (and
   their repair candidates) declare the ground truth's signatures and can
   reuse its solving contexts and verdict cache.  Candidates recur heavily
   across techniques — the cache answers the repeats.  Each (variant,
   technique) row gets its own {!Session.t} around this oracle, so budgets,
   deadlines and telemetry stay per-row while the solving state spans the
   domain. *)
let oracle_cache : (string, Specrepair_solver.Oracle.t) Hashtbl.t =
  Hashtbl.create 18

(* Keyed on the solving options too: a simplifying study run must not
   reuse (or poison) the plain run's oracle. *)
let domain_oracle ?(simplify = false) ?(portfolio = 1)
    (d : Benchmarks.Domains.t) =
  let key = Printf.sprintf "%s|%b|%d" d.name simplify portfolio in
  match Hashtbl.find_opt oracle_cache key with
  | Some o -> o
  | None ->
      let o =
        Specrepair_solver.Oracle.create ~simplify ~portfolio
          (Benchmarks.Domains.env d)
      in
      Hashtbl.replace oracle_cache key o;
      o

let aunit_suite (d : Benchmarks.Domains.t) =
  match Hashtbl.find_opt suite_cache d.name with
  | Some s -> s
  | None ->
      let env = Benchmarks.Domains.env d in
      let scope =
        (* generate valuations at the commands' scope *)
        match env.spec.commands with
        | c :: _ -> Specrepair_solver.Bounds.scope_of_command c
        | [] -> Specrepair_solver.Analyzer.default_scope
      in
      let session = Session.create ~oracle:(domain_oracle d) env in
      let s = Aunit.generate ~session ~per_kind:4 env ~scope in
      Hashtbl.replace suite_cache d.name s;
      s

(* The model profile for a domain: familiarity sharpens (or flattens) the
   proposal distribution.  The same adjustment applies to every panel
   member; with the default [gpt4] base this is the pre-panel profile,
   bit-identically. *)
let profile_for ?(base = Llm.Model.gpt4) (d : Benchmarks.Domains.t) =
  { base with Llm.Model.temperature = base.Llm.Model.temperature /. d.familiarity }

(* Per-tool budget calibration: the knobs that align each engine's search
   effort with the scale of its real counterpart (see EXPERIMENTS.md). *)
let budget_for technique (base : Repair.Common.budget) =
  match (technique : Technique.t) with
  | Technique.ARepair ->
      { base with locations = 2; max_candidates = 50; max_depth = 2 }
  | Technique.BeAFix ->
      (* the bounded-exhaustive sweep hits its exploration ceiling quickly —
         the analogue of the original tool's timeouts on its benchmarks *)
      { base with locations = 5; max_candidates = 14; use_pool = false }
  | Technique.ATR -> { base with locations = 5; max_candidates = 380 }
  | Technique.ICEBAR ->
      { base with max_iterations = 4; max_candidates = 480 }
  | Technique.Single _ | Technique.Multi _ -> base

let apply_technique ~session technique (v : Benchmarks.Generate.variant) =
  let faulty_env () =
    match Alloy.Typecheck.check_result v.injected.Benchmarks.Fault.faulty with
    | Ok env -> env
    | Error msg -> failwith ("faulty variant does not type-check: " ^ msg)
  in
  let take n xs = List.filteri (fun i _ -> i < n) xs in
  match (technique : Technique.t) with
  | Technique.ARepair ->
      (* ARepair sees a thinner suite than ICEBAR accumulates, mirroring the
         limited hand-written AUnit tests it shipped with; its search is
         pure test evaluation and never touches the session oracle (the
         suite itself is oracle-generated) *)
      Repair.Arepair.repair ~session (faulty_env ())
        (take 3 (aunit_suite v.domain))
  | Technique.ICEBAR ->
      Repair.Icebar.repair ~session (faulty_env ()) (aunit_suite v.domain)
  | Technique.BeAFix -> Repair.Beafix.repair ~session (faulty_env ())
  | Technique.ATR -> Repair.Atr.repair ~session (faulty_env ())
  | Technique.Single (setting, profile) ->
      Llm.Single_round.repair ~session
        ~profile:(profile_for ~base:profile v.domain)
        (Benchmarks.Generate.to_task v) setting
  | Technique.Multi (fb, profile) ->
      Llm.Multi_round.repair ~session
        ~profile:(profile_for ~base:profile v.domain)
        (Benchmarks.Generate.to_task v) fb

let run_one ?(seed = 42) ?(budget = Repair.Common.default_budget) ?deadline_ms
    ?telemetry ?simplify ?portfolio technique (v : Benchmarks.Generate.variant)
    =
  (* one session per study row: shared domain oracle, per-technique budget,
     monotonic clock for [time_ms] *)
  let session =
    Session.create
      ~oracle:(domain_oracle ?simplify ?portfolio v.domain)
      ~budget:(budget_for technique budget)
      ~seed ?deadline_ms
      (Benchmarks.Domains.env v.domain)
  in
  let result = apply_technique ~session technique v in
  let elapsed = Session.elapsed_ms session in
  let final = result.Repair.Common.final_spec in
  let rep =
    Metrics.Rep.rep_score
      ~max_conflicts:budget.Repair.Common.max_conflicts
      ~ground_truth:v.ground_truth ~candidate:final ()
  in
  let gt_text = Alloy.Pretty.spec_to_string v.ground_truth in
  let cand_text = Alloy.Pretty.spec_to_string final in
  let tm = Metrics.Bleu.token_match ~reference:gt_text ~candidate:cand_text in
  let sm = Metrics.Tree_kernel.syntax_match v.ground_truth final in
  (match telemetry with
  | None -> ()
  | Some sink ->
      sink
        (Session.telemetry_json
           ~extra:
             [
               ("variant_id", v.id);
               ("technique", Technique.name technique);
               ("defect_class", v.injected.Benchmarks.Fault.class_name);
               ("tool", result.Repair.Common.tool);
               ("repaired", string_of_bool result.Repair.Common.repaired);
             ]
           session));
  {
    variant_id = v.id;
    domain = v.domain.name;
    benchmark = v.domain.benchmark;
    technique = Technique.name technique;
    rep;
    tm;
    sm;
    tool_claimed = result.Repair.Common.repaired;
    time_ms = elapsed;
  }

let run ?(seed = 42) ?(budget = Repair.Common.default_budget) ?deadline_ms
    ?telemetry ?simplify ?portfolio ?(techniques = Technique.all)
    ?(progress = fun _ -> ()) variants =
  let total = List.length variants * List.length techniques in
  let done_count = ref 0 in
  List.concat_map
    (fun v ->
      List.map
        (fun t ->
          let r =
            run_one ~seed ~budget ?deadline_ms ?telemetry ?simplify ?portfolio
              t v
          in
          incr done_count;
          if !done_count mod 100 = 0 then
            progress
              (Printf.sprintf "%d/%d (%s on %s)" !done_count total r.technique
                 r.variant_id);
          r)
        techniques)
    variants

(* {2 CSV round trip} *)

let header = "variant_id,domain,benchmark,technique,rep,tm,sm,tool_claimed,time_ms"

let row_to_line ?(timings = true) r =
  Printf.sprintf "%s,%s,%s,%s,%d,%.6f,%.6f,%b,%.3f" r.variant_id r.domain
    (Benchmarks.Domains.benchmark_to_string r.benchmark)
    r.technique r.rep r.tm r.sm r.tool_claimed
    (if timings then r.time_ms else 0.)

let to_csv ?timings results =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (row_to_line ?timings r);
      Buffer.add_char buf '\n')
    results;
  Buffer.contents buf

let row_of_line line =
  let malformed what =
    failwith (Printf.sprintf "Study.of_csv: %s in row %S" what line)
  in
  match String.split_on_char ',' line with
  | [ vid; dom; bench; tech; rep; tm; sm; claimed; time_ms ] -> (
      let benchmark =
        match bench with
        | "A4F" -> Benchmarks.Domains.A4F
        | "ARepair" -> Benchmarks.Domains.ARepair_bench
        | other -> malformed (Printf.sprintf "unknown benchmark %S" other)
      in
      try
        {
          variant_id = vid;
          domain = dom;
          benchmark;
          technique = tech;
          rep = int_of_string rep;
          tm = float_of_string tm;
          sm = float_of_string sm;
          tool_claimed = bool_of_string claimed;
          time_ms = float_of_string time_ms;
        }
      with Failure _ | Invalid_argument _ -> malformed "unparsable field")
  | fields ->
      malformed (Printf.sprintf "%d fields, expected 9" (List.length fields))

(* A truncated file (a worker killed mid-write under the old scheme, a
   torn copy, a partial download) must not silently shed rows: every
   non-empty, non-header line either parses or raises. *)
let of_csv text =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" || line = header then None else Some (row_of_line line))
    (String.split_on_char '\n' text)

(* {2 Parallel runner}

   Fans the (variant, technique) rows out over {!Scheduler} worker
   processes: the parent keeps a chunked work queue, workers pull chunks
   over a pipe and publish each finished chunk atomically, and a worker
   that dies mid-chunk costs one chunk of recompute (bounded retries),
   not the study.  Safe because every row is deterministic and workers
   share nothing; per-row telemetry lines ride along in the chunk files
   and are replayed into the caller's sink as each chunk is merged,
   followed by one final [{"scheduler":…}] summary line. *)

let run_parallel ?(seed = 42) ?(budget = Repair.Common.default_budget)
    ?deadline_ms ?telemetry ?simplify ?portfolio ?(techniques = Technique.all)
    ?(jobs = 1) ?(max_retries = 2) ?heartbeat_timeout_ms ?on_stats
    ?(progress = fun _ -> ()) variants =
  if jobs <= 1 then
    run ~seed ~budget ?deadline_ms ?telemetry ?simplify ?portfolio ~techniques
      ~progress variants
  else begin
    let work =
      Array.of_list
        (List.concat_map
           (fun v -> List.map (fun t -> (v, t)) techniques)
           variants)
    in
    let want_telemetry = Option.is_some telemetry in
    (* runs in the worker process; the row's telemetry line goes through
       the chunk file's sideband channel *)
    let f ~emit i =
      let v, t = work.(i) in
      let telemetry = if want_telemetry then Some emit else None in
      row_to_line
        (run_one ~seed ~budget ?deadline_ms ?telemetry ?simplify ?portfolio t
           v)
    in
    let lines, stats =
      Scheduler.map ~jobs ~max_retries ?heartbeat_timeout_ms ~progress
        ?emit:telemetry ~f (Array.length work)
    in
    Option.iter
      (fun sink ->
        sink
          ("{\"scheduler\":"
          ^ Specrepair_engine.Telemetry.Scheduler.to_json ~jobs stats
          ^ "}"))
      telemetry;
    Option.iter (fun g -> g stats) on_stats;
    progress
      (Printf.sprintf
         "%d rows from %d worker(s): %d chunks, %d retries, %d workers lost"
         stats.rows_completed jobs stats.chunks_completed stats.retries
         stats.workers_lost);
    (* results arrive indexed by work item, i.e. already in the sequential
       run's (variant-major, technique-minor) order: the merged CSV is
       byte-identical to [--jobs 1] modulo the wall-clock [time_ms] *)
    Array.to_list (Array.map row_of_line lines)
  end

(* {2 Streaming runner}

   The million-variant mode: the corpus is a {!Corpus_stream} index range
   (variants derived on demand in the workers, never materialized) and the
   results live as checkpointed shards in a run directory
   ({!Scheduler.map_checkpointed}), so both sides of the study are
   O(chunk) memory whatever the total.  A killed run resumes from the
   manifest's pending complement. *)

let stream_fingerprint ?(seed = 42) ?(simplify = false) ?(portfolio = 1)
    ~source ~techniques ~total () =
  Corpus_stream.fingerprint ~source ~seed ~total:(total * List.length techniques)
    ~options:
      [
        "variants=" ^ string_of_int total;
        "techniques=" ^ String.concat "+" (List.map Technique.name techniques);
        Printf.sprintf "simplify=%b" simplify;
        Printf.sprintf "portfolio=%d" portfolio;
      ]

let run_stream ?(seed = 42) ?(budget = Repair.Common.default_budget)
    ?deadline_ms ?telemetry ?simplify ?portfolio ?(techniques = Technique.all)
    ?(jobs = 1) ?(max_retries = 2) ?heartbeat_timeout_ms ?on_stats
    ?(progress = fun _ -> ()) ?(source = Corpus_stream.Injected)
    ?(resume = false) ~dir ~total () =
  if techniques = [] then invalid_arg "Study.run_stream: no techniques";
  if total <= 0 then invalid_arg "Study.run_stream: total must be positive";
  let ntech = List.length techniques in
  let tech = Array.of_list techniques in
  let nrows = total * ntech in
  let fingerprint =
    stream_fingerprint ~seed ?simplify ?portfolio ~source ~techniques ~total ()
  in
  let want_telemetry = Option.is_some telemetry in
  (* worker-local memo: work items are variant-major, so a chunk asks for
     each variant's [ntech] rows consecutively — derive it once, not once
     per technique.  Lives in the worker process (f runs post-fork). *)
  let last = ref None in
  let f ~emit i =
    let vi = i / ntech and ti = i mod ntech in
    let v =
      match !last with
      | Some (j, v) when j = vi -> v
      | _ ->
          let v = Corpus_stream.variant ~source ~seed vi in
          last := Some (vi, v);
          v
    in
    let telemetry = if want_telemetry then Some emit else None in
    row_to_line
      (run_one ~seed ~budget ?deadline_ms ?telemetry ?simplify ?portfolio
         tech.(ti) v)
  in
  let stats =
    Scheduler.map_checkpointed ~jobs ~max_retries ?heartbeat_timeout_ms
      ~progress ?emit:telemetry ~resume ~dir ~fingerprint ~f nrows
  in
  Option.iter
    (fun sink ->
      sink
        ("{\"scheduler\":"
        ^ Specrepair_engine.Telemetry.Scheduler.to_json ~jobs stats
        ^ "}"))
    telemetry;
  Option.iter (fun g -> g stats) on_stats;
  progress
    (Printf.sprintf
       "%d rows this run (%d total) from %d worker(s): %d chunks, %d retries, \
        %d workers lost"
       stats.rows_completed nrows jobs stats.chunks_completed stats.retries
       stats.workers_lost);
  stats

(* The lazy merge: stream the shards of a complete run into [oc] in
   global row order, one shard in memory at a time.  [~timings:false]
   re-normalizes each row through the CSV codec to zero [time_ms], the
   same byte-stability contract as {!to_csv}.

   Every row is re-parsed on the way through — the scheduler's shard
   verification checks the framing (indices, coverage), but only this
   layer knows the payload is a study row, and a shard truncated inside
   a payload would otherwise slip into the merged CSV.  An unparsable
   row means a shard changed after it was checkpointed: that is a
   corrupt checkpoint, reported as such. *)
let write_stream_csv ?(timings = true) ~dir oc =
  output_string oc header;
  output_char oc '\n';
  Scheduler.fold_shards ~dir
    (fun count i line ->
      let row =
        try row_of_line line
        with Failure msg ->
          raise
            (Manifest.Corrupt
               (Printf.sprintf
                  "%s: merged row %d does not parse (%s) — a shard was \
                   modified after checkpointing"
                  dir i msg))
      in
      output_string oc (if timings then line else row_to_line ~timings row);
      output_char oc '\n';
      count + 1)
    0

(* The pre-scheduler runner: a static round-robin partition over forked
   workers, one slice each, no fault tolerance (any worker failure aborts
   the whole run).  Kept as the baseline that [bench/main.ml] compares the
   dynamic scheduler against. *)

let run_parallel_static ?(seed = 42) ?(budget = Repair.Common.default_budget)
    ?deadline_ms ?telemetry ?(techniques = Technique.all) ?(jobs = 1)
    ?(progress = fun _ -> ()) variants =
  if jobs <= 1 then
    run ~seed ~budget ?deadline_ms ?telemetry ~techniques ~progress variants
  else begin
    let arr = Array.of_list variants in
    let n = Array.length arr in
    let slice w =
      (* round-robin so heavy domains spread across workers *)
      List.filter_map
        (fun i -> if i mod jobs = w then Some arr.(i) else None)
        (List.init n Fun.id)
    in
    let want_telemetry = Option.is_some telemetry in
    let children =
      List.init jobs (fun w ->
          let path =
            Filename.temp_file (Printf.sprintf "specrepair_w%d_" w) ".csv"
          in
          let tpath = path ^ ".telemetry" in
          match Unix.fork () with
          | 0 ->
              (* worker; an exception must exit this process, never escape
                 into the parent's continuation of a forked child *)
              (try
                 let tchan =
                   if want_telemetry then Some (open_out tpath) else None
                 in
                 let telemetry =
                   Option.map
                     (fun oc line ->
                       output_string oc line;
                       output_char oc '\n')
                     tchan
                 in
                 let rows =
                   run ~seed ~budget ?deadline_ms ?telemetry ~techniques
                     (slice w)
                 in
                 Option.iter close_out tchan;
                 let oc = open_out path in
                 output_string oc (to_csv rows);
                 close_out oc
               with e ->
                 Printf.eprintf "static worker %d/%d: %s\n%!" w jobs
                   (Printexc.to_string e);
                 Unix._exit 3);
              Stdlib.exit 0
          | pid -> (w, pid, path, tpath))
    in
    (* On any failure: reap every remaining child (no zombies outlive the
       call) and remove every temp file before re-raising. *)
    let reap_all () =
      List.iter
        (fun (_, pid, _, _) ->
          match Unix.waitpid [] pid with
          | _ -> ()
          | exception Unix.Unix_error (_, _, _) -> () (* already reaped *))
        children
    in
    let remove_temp_files () =
      List.iter
        (fun (_, _, path, tpath) ->
          List.iter
            (fun p ->
              if Sys.file_exists p then
                try Sys.remove p with Sys_error _ -> ())
            [ path; tpath ])
        children
    in
    let finished = ref 0 in
    let results =
      try
        List.concat_map
          (fun (w, pid, path, tpath) ->
            let _, status = Unix.waitpid [] pid in
            (* name the casualty like the dynamic scheduler's Chunk_failed
               does: which slice, which pid, how it died *)
            (match status with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED code ->
                failwith
                  (Printf.sprintf
                     "Study.run_parallel_static: worker %d/%d (pid %d, slice \
                      %d mod %d) exited %d"
                     (w + 1) jobs pid w jobs code)
            | Unix.WSIGNALED sg ->
                failwith
                  (Printf.sprintf
                     "Study.run_parallel_static: worker %d/%d (pid %d, slice \
                      %d mod %d) killed by signal %d"
                     (w + 1) jobs pid w jobs sg)
            | Unix.WSTOPPED sg ->
                failwith
                  (Printf.sprintf
                     "Study.run_parallel_static: worker %d/%d (pid %d, slice \
                      %d mod %d) stopped by signal %d"
                     (w + 1) jobs pid w jobs sg));
            let ic = open_in_bin path in
            let text = really_input_string ic (in_channel_length ic) in
            close_in ic;
            Sys.remove path;
            (match telemetry with
            | Some sink when Sys.file_exists tpath ->
                let tic = open_in tpath in
                (try
                   while true do
                     sink (input_line tic)
                   done
                 with End_of_file -> ());
                close_in tic;
                Sys.remove tpath
            | _ -> ());
            let rows = of_csv text in
            incr finished;
            progress
              (Printf.sprintf "worker %d/%d finished (%d rows)" !finished jobs
                 (List.length rows));
            rows)
          children
      with e ->
        reap_all ();
        remove_temp_files ();
        raise e
    in
    progress (Printf.sprintf "%d rows from %d workers" (List.length results) jobs);
    (* restore deterministic order: by variant then technique *)
    List.stable_sort
      (fun a b -> compare (a.variant_id, a.technique) (b.variant_id, b.technique))
      results
  end
