(** The hybrid repair tool the paper's discussion sketches as future work:
    a dynamic pipeline that first lets a traditional engine attempt a
    systematic repair and, when it falls short, hands the engine's
    best-effort candidate to the Multi-Round LLM pipeline to finish the
    job.  This is RQ3's union made operational in a single tool. *)

module Llm = Specrepair_llm
module Common = Specrepair_repair.Common

type stage = Traditional_sufficed | Llm_finished | Unrepaired

val stage_to_string : stage -> string

val repair :
  ?session:Specrepair_repair.Session.t ->
  ?profile:Llm.Model.profile ->
  Llm.Task.t ->
  Common.result * stage
(** Runs ATR first (structured, template-based); on failure, continues with
    Multi-Round/Auto from ATR's best-effort spec so partial progress (for
    example one of two compound faults already fixed) is preserved.  One
    session spans both stages — shared oracle, aggregated telemetry, one
    deadline across the pipeline.  Without [?session] a default one is
    created from the task's faulty spec, identically for every profile and
    entry point (pinned by test against an explicit session). *)

(** {2 Learned ordering} *)

type plan = {
  defect_class : string;  (** {!Learned.defect_class_of_task} *)
  ordering : (Technique.t * float) list;
      (** techniques with statistics for the class, best
          expected-value-per-ms first *)
  learned : bool;  (** [false] = cold start, the static pipeline runs *)
}

val plan : ?stats:Learned.t -> Llm.Task.t -> plan
(** The ordering {!repair_learned} would race, without running anything. *)

type learned_outcome = {
  result : Common.result;
  stage : stage;
  chosen_plan : plan;
  attempted : string list;  (** technique labels actually run, in order *)
}

val repair_learned :
  ?session:Specrepair_repair.Session.t ->
  ?profile:Llm.Model.profile ->
  ?stats:Learned.t ->
  ?top_k:int ->
  Llm.Task.t ->
  learned_outcome
(** Orders the runnable techniques (ATR, BeAFix and the full LLM panel —
    ARepair/ICEBAR need a test suite a bare task does not carry) by the
    statistics' expected value per millisecond for the task's defect
    class, then races the top [top_k] (default 3) sequentially under the
    session's single deadline: first success wins, expiry aborts the
    remainder.  Without statistics for the class — no [?stats], empty
    mining, unseen class — it falls back to the static {!repair},
    bit-identically (pinned by test). *)
