(** The hybrid repair tool the paper's discussion sketches as future work:
    a dynamic pipeline that first lets a traditional engine attempt a
    systematic repair and, when it falls short, hands the engine's
    best-effort candidate to the Multi-Round LLM pipeline to finish the
    job.  This is RQ3's union made operational in a single tool. *)

module Llm = Specrepair_llm
module Common = Specrepair_repair.Common

type stage = Traditional_sufficed | Llm_finished | Unrepaired

val stage_to_string : stage -> string

val repair :
  ?session:Specrepair_repair.Session.t ->
  ?profile:Llm.Model.profile ->
  Llm.Task.t ->
  Common.result * stage
(** Runs ATR first (structured, template-based); on failure, continues with
    Multi-Round/Auto from ATR's best-effort spec so partial progress (for
    example one of two compound faults already fixed) is preserved.  One
    session spans both stages — shared oracle, aggregated telemetry, one
    deadline across the pipeline.  Without [?session] a default one is
    created from the task's faulty spec. *)
