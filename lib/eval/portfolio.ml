module Alloy = Specrepair_alloy
module Repair = Specrepair_repair
module Session = Repair.Session
module Llm = Specrepair_llm
module Common = Repair.Common

type stage = Traditional_sufficed | Llm_finished | Unrepaired

let stage_to_string = function
  | Traditional_sufficed -> "traditional"
  | Llm_finished -> "llm"
  | Unrepaired -> "unrepaired"

(* The one place a default session comes from: both entry points (and
   every profile) share it, so a caller-provided session and the default
   agree — pinned by a regression test.  [for_spec] also covers the
   ill-typed-input case the old inline [Session.create env] could not. *)
let default_session session (task : Llm.Task.t) =
  match session with Some s -> s | None -> Session.for_spec task.faulty

let repair ?session ?(profile = Llm.Model.gpt4) (task : Llm.Task.t) =
  let session = default_session session task in
  match Alloy.Typecheck.check_result task.faulty with
  | Error _ ->
      ( Common.result ~tool:"Portfolio" ~repaired:false task.faulty
          ~candidates:0 ~iterations:0,
        Unrepaired )
  | Ok env ->
      (* one session spans both stages: everything ATR learned about the
         spec (translations, clauses, candidate verdicts) is already in the
         oracle when the LLM loop starts from its output, the telemetry
         aggregates across stages, and a deadline cuts the whole pipeline *)
      let atr = Repair.Atr.repair ~session env in
      if atr.repaired then
        ( { atr with Common.tool = "Portfolio" }, Traditional_sufficed )
      else begin
        (* hand the traditional engine's best effort to the LLM loop *)
        let task' = { task with Llm.Task.faulty = atr.final_spec } in
        let mr = Llm.Multi_round.repair ~session ~profile task' Llm.Multi_round.Auto in
        let combined =
          {
            mr with
            Common.tool = "Portfolio";
            candidates_tried = atr.candidates_tried + mr.candidates_tried;
          }
        in
        (combined, if mr.repaired then Llm_finished else Unrepaired)
      end

(* {2 Learned ordering} *)

type plan = {
  defect_class : string;
  ordering : (Technique.t * float) list;
  learned : bool;  (** false = cold start, static pipeline ran *)
}

(* Techniques runnable from a bare task: ARepair and ICEBAR need the
   domain's AUnit suite, which a task does not carry, so the learned plan
   draws from the other two traditional engines and the whole panel. *)
let plan_pool =
  [ Technique.ATR; Technique.BeAFix ]
  @ List.concat_map Technique.llm_for Llm.Model.panel

let plan ?stats (task : Llm.Task.t) =
  let defect_class = Learned.defect_class_of_task task in
  match stats with
  | None -> { defect_class; ordering = []; learned = false }
  | Some stats ->
      let ordering = Learned.rank stats ~defect_class plan_pool in
      { defect_class; ordering; learned = ordering <> [] }

type learned_outcome = {
  result : Common.result;
  stage : stage;
  chosen_plan : plan;
  attempted : string list;  (** technique labels actually run, in order *)
}

let run_technique ~session ~env (task : Llm.Task.t) = function
  | Technique.ATR -> Some (Repair.Atr.repair ~session env)
  | Technique.BeAFix -> Some (Repair.Beafix.repair ~session env)
  | Technique.Single (s, p) ->
      Some (Llm.Single_round.repair ~session ~profile:p task s)
  | Technique.Multi (f, p) ->
      Some (Llm.Multi_round.repair ~session ~profile:p task f)
  | Technique.ARepair | Technique.ICEBAR -> None

let repair_learned ?session ?(profile = Llm.Model.gpt4) ?stats ?(top_k = 3)
    (task : Llm.Task.t) =
  let session = default_session session task in
  let chosen_plan = plan ?stats task in
  match Alloy.Typecheck.check_result task.faulty with
  | Error _ ->
      let result, stage = repair ~session ~profile task in
      { result; stage; chosen_plan = { chosen_plan with learned = false };
        attempted = [] }
  | Ok env ->
      if not chosen_plan.learned then begin
        (* cold start: no statistics for this defect class — the static
           two-stage pipeline runs, bit-identically to {!repair} *)
        let result, stage = repair ~session ~profile task in
        { result; stage; chosen_plan; attempted = [] }
      end
      else begin
        let take n xs = List.filteri (fun i _ -> i < n) xs in
        let racers = take top_k (List.map fst chosen_plan.ordering) in
        (* race the top of the ranking sequentially under the session's
           one deadline: first success wins, expiry aborts the plan and
           the remaining racers are never started *)
        let rec race attempted candidates iterations best = function
          | [] ->
              let result =
                match best with
                | Some (r : Common.result) ->
                    {
                      r with
                      Common.tool = "Portfolio-Learned";
                      candidates_tried = candidates;
                      iterations;
                      timed_out = Session.timed_out session;
                    }
                | None ->
                    Common.result ~tool:"Portfolio-Learned" ~repaired:false
                      ~timed_out:(Session.timed_out session) task.faulty
                      ~candidates ~iterations
              in
              { result; stage = Unrepaired; chosen_plan;
                attempted = List.rev attempted }
          | tech :: rest ->
              if Session.expired session then
                race attempted candidates iterations best []
              else begin
                match run_technique ~session ~env task tech with
                | None -> race attempted candidates iterations best rest
                | Some (r : Common.result) ->
                    let attempted = Technique.name tech :: attempted in
                    let candidates = candidates + r.candidates_tried in
                    let iterations = iterations + r.iterations in
                    if r.repaired then
                      let stage =
                        match tech with
                        | Technique.Single _ | Technique.Multi _ ->
                            Llm_finished
                        | _ -> Traditional_sufficed
                      in
                      let result =
                        {
                          r with
                          Common.tool = "Portfolio-Learned";
                          candidates_tried = candidates;
                          iterations;
                        }
                      in
                      { result; stage; chosen_plan;
                        attempted = List.rev attempted }
                    else
                      let best =
                        match best with Some _ -> best | None -> Some r
                      in
                      race attempted candidates iterations best rest
              end
        in
        race [] 0 0 None racers
      end
