module Alloy = Specrepair_alloy
module Repair = Specrepair_repair
module Session = Repair.Session
module Llm = Specrepair_llm
module Common = Repair.Common

type stage = Traditional_sufficed | Llm_finished | Unrepaired

let stage_to_string = function
  | Traditional_sufficed -> "traditional"
  | Llm_finished -> "llm"
  | Unrepaired -> "unrepaired"

let repair ?session ?(profile = Llm.Model.gpt4) (task : Llm.Task.t) =
  match Alloy.Typecheck.check_result task.faulty with
  | Error _ ->
      ( Common.result ~tool:"Portfolio" ~repaired:false task.faulty
          ~candidates:0 ~iterations:0,
        Unrepaired )
  | Ok env -> (
      (* one session spans both stages: everything ATR learned about the
         spec (translations, clauses, candidate verdicts) is already in the
         oracle when the LLM loop starts from its output, the telemetry
         aggregates across stages, and a deadline cuts the whole pipeline *)
      let session =
        match session with Some s -> s | None -> Session.create env
      in
      let atr = Repair.Atr.repair ~session env in
      if atr.repaired then
        ( { atr with Common.tool = "Portfolio" }, Traditional_sufficed )
      else begin
        (* hand the traditional engine's best effort to the LLM loop *)
        let task' = { task with Llm.Task.faulty = atr.final_spec } in
        let mr = Llm.Multi_round.repair ~session ~profile task' Llm.Multi_round.Auto in
        let combined =
          {
            mr with
            Common.tool = "Portfolio";
            candidates_tried = atr.candidates_tried + mr.candidates_tried;
          }
        in
        (combined, if mr.repaired then Llm_finished else Unrepaired)
      end)
