(** Generate-on-demand study corpora.

    The materialized corpus ({!Specrepair_benchmarks.Generate.all}) holds
    every variant in memory, which caps studies at Table I scale.  This
    module maps a {e global row index} to a variant derived on demand, so
    a million-variant corpus is an integer range, not a list: a streamed
    run touches O(chunk) variants at a time no matter the total.

    The [Injected] source drives the seeded fault injector
    ({!Specrepair_benchmarks.Fault.inject}).  Index [i] of epoch 0
    ([i < natural_total]) is bit-identical to element [i] of
    [Generate.all ~seed ()]; beyond that the corpus wraps into fresh
    epochs — the same domain cycle with new deterministic fault streams
    — so any total is well-defined.

    A [Custom] source plugs in any other deterministic producer; the
    fuzz library wires its spec generators in this way
    ({!Specrepair_fuzz.Stream_source}), keeping this module free of a
    dependency cycle with the fuzzer. *)

module Benchmarks = Specrepair_benchmarks

type source =
  | Injected
      (** the paper's benchmark corpus, extended past Table I by epochs *)
  | Custom of {
      name : string;  (** stable label; part of the run fingerprint *)
      produce : seed:int -> int -> Benchmarks.Generate.variant;
          (** must be deterministic in [(seed, index)] and O(1)-memory *)
    }

val source_name : source -> string

val natural_total : unit -> int
(** Rows in one epoch of the [Injected] source (1,974: Table I). *)

val variant : ?source:source -> seed:int -> int -> Benchmarks.Generate.variant
(** The variant at a global index.  Deterministic in
    [(source, seed, index)]; derived on every call, never cached. *)

val iter :
  ?source:source ->
  seed:int ->
  lo:int ->
  hi:int ->
  (int -> Benchmarks.Generate.variant -> unit) ->
  unit
(** [iter ~seed ~lo ~hi f] applies [f i (variant i)] for [lo <= i < hi],
    one variant live at a time. *)

val fingerprint :
  source:source -> seed:int -> total:int -> options:string list -> string
(** The run-parameter fingerprint stored in the checkpoint manifest:
    resuming under a different corpus, seed, total or option set must be
    rejected rather than mix rows.  [options] carries run-level knobs
    (technique list, solving options) in a stable order. *)
