module Benchmarks = Specrepair_benchmarks
module Domains = Benchmarks.Domains
module Generate = Benchmarks.Generate

type source =
  | Injected
  | Custom of {
      name : string;
      produce : seed:int -> int -> Generate.variant;
    }

let source_name = function Injected -> "injected" | Custom { name; _ } -> name

(* The injected corpus in [Generate.all] order: A4F domains then ARepair
   domains, each in [Domains.all] order, with prefix sums so a global
   offset resolves to (domain, local index) by scan.  Eighteen entries —
   a per-call scan is nothing next to deriving the variant. *)
let ordered_domains =
  lazy
    (let by bench =
       List.filter (fun (d : Domains.t) -> d.benchmark = bench) Domains.all
     in
     let ds = by Domains.A4F @ by Domains.ARepair_bench in
     let prefixed, total =
       List.fold_left
         (fun (acc, off) (d : Domains.t) -> ((off, d) :: acc, off + d.count))
         ([], 0) ds
     in
     (List.rev prefixed, total))

let natural_total () = snd (Lazy.force ordered_domains)

let injected ~seed i =
  if i < 0 then invalid_arg "Corpus_stream: negative index";
  let domains, total = Lazy.force ordered_domains in
  let epoch = i / total and off = i mod total in
  let rec locate = function
    | [] -> assert false
    | [ (start, d) ] -> (d, off - start)
    | (start, d) :: ((next, _) :: _ as rest) ->
        if off < next then (d, off - start) else locate rest
  in
  let d, local = locate domains in
  (* epoch 0 is exactly the materialized corpus; later epochs reuse the
     derivation with indices past the domain's Table I count, giving
     fresh deterministic fault streams and distinct variant ids *)
  Generate.variant_at ~seed d (local + (epoch * d.Domains.count))

let variant ?(source = Injected) ~seed i =
  match source with
  | Injected -> injected ~seed i
  | Custom { produce; _ } -> produce ~seed i

let iter ?source ~seed ~lo ~hi f =
  for i = lo to hi - 1 do
    f i (variant ?source ~seed i)
  done

let fingerprint ~source ~seed ~total ~options =
  Printf.sprintf "specrepair-stream-v1|source=%s|seed=%d|total=%d|%s"
    (source_name source) seed total
    (String.concat "|" options)
