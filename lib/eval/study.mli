(** The study runner: applies every technique to every benchmark variant
    and records REP / TM / SM per (variant, technique) — the raw data
    behind all tables and figures.

    Every (variant, technique) row runs in its own
    {!Specrepair_repair.Session.t} (shared per-domain oracle, per-technique
    budget, monotonic [time_ms]); [?deadline_ms] bounds each row and
    [?telemetry] receives one JSON line per row (schema in DESIGN.md) —
    the CSV schema itself never changes. *)

module Alloy = Specrepair_alloy
module Benchmarks = Specrepair_benchmarks

type spec_result = {
  variant_id : string;
  domain : string;
  benchmark : Benchmarks.Domains.benchmark;
  technique : string;
  rep : int;  (** 1 = command outcomes match the ground truth *)
  tm : float;  (** Token Match of the final candidate vs ground truth *)
  sm : float;  (** Syntax Match of the final candidate vs ground truth *)
  tool_claimed : bool;  (** the technique's own success verdict *)
  time_ms : float;  (** monotonic wall clock of the technique run *)
}

val run_one :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?simplify:bool ->
  ?portfolio:int ->
  Technique.t ->
  Benchmarks.Generate.variant ->
  spec_result

val run :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?techniques:Technique.t list ->
  ?progress:(string -> unit) ->
  Benchmarks.Generate.variant list ->
  spec_result list
(** Row-major: every technique applied to every variant.  [?simplify] and
    [?portfolio] configure the shared per-domain oracle's verdict-only
    fresh solves (see {!Specrepair_solver.Oracle.create}); result rows are
    bit-identical whatever the solving options, because instance-producing
    queries always take the plain analyzer path. *)

val run_parallel :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?techniques:Technique.t list ->
  ?jobs:int ->
  ?max_retries:int ->
  ?heartbeat_timeout_ms:float ->
  ?on_stats:(Scheduler.stats -> unit) ->
  ?progress:(string -> unit) ->
  Benchmarks.Generate.variant list ->
  spec_result list
(** Like {!run} but fanned out over [jobs] forked workers through the
    fault-tolerant {!Scheduler}: dynamic chunked work queue, per-chunk
    atomic result files, dead workers respawned and their in-flight chunk
    requeued up to [?max_retries] (default 2) times before
    {!Scheduler.Chunk_failed} names the offending rows.  Results come
    back in the sequential run's order, so the CSV is byte-identical to
    [jobs = 1] except for the wall-clock [time_ms] column.  Worker
    telemetry lines are replayed into [?telemetry] as each chunk is
    merged (every row exactly once), followed by one final
    [{"scheduler":…}] summary line; [?on_stats] receives the scheduler's
    counters after the merge. *)

val run_stream :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?simplify:bool ->
  ?portfolio:int ->
  ?techniques:Technique.t list ->
  ?jobs:int ->
  ?max_retries:int ->
  ?heartbeat_timeout_ms:float ->
  ?on_stats:(Scheduler.stats -> unit) ->
  ?progress:(string -> unit) ->
  ?source:Corpus_stream.source ->
  ?resume:bool ->
  dir:string ->
  total:int ->
  unit ->
  Scheduler.stats
(** The streaming study: [total] corpus variants ({!Corpus_stream},
    derived on demand in the workers — indices past the natural corpus
    wrap into fresh epochs) times the technique list, checkpointed into
    [dir] through {!Scheduler.map_checkpointed}.  Memory is O(chunk)
    regardless of [total]; a crashed or [kill -9]ed run restarts with
    [~resume:true] and recomputes only the manifest's pending complement.
    The checkpoint fingerprint covers source, seed, total, techniques and
    solving options, so a resume under different parameters is rejected
    ({!Manifest.Corrupt}).  Progress lines carry rows/s and an ETA; rows
    stream back with {!write_stream_csv}. *)

val write_stream_csv : ?timings:bool -> dir:string -> out_channel -> int
(** Lazily merge a {e complete} streamed run into one CSV (header plus
    rows in corpus order, one shard in memory at a time); returns the row
    count.  The output is byte-identical to {!to_csv} of the equivalent
    in-memory run modulo the wall-clock [time_ms] column —
    [~timings:false] zeroes it on both sides, making the equality exact.
    Fails loudly on an incomplete run; raises {!Manifest.Corrupt} on an
    untrustworthy checkpoint. *)

val stream_fingerprint :
  ?seed:int ->
  ?simplify:bool ->
  ?portfolio:int ->
  source:Corpus_stream.source ->
  techniques:Technique.t list ->
  total:int ->
  unit ->
  string
(** The run-parameter fingerprint {!run_stream} stores in the manifest;
    exposed so operators can pre-check a directory's compatibility. *)

val run_parallel_static :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?techniques:Technique.t list ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  Benchmarks.Generate.variant list ->
  spec_result list
(** The pre-scheduler parallel runner: static round-robin slices, one per
    forked worker, no fault tolerance (any worker failure aborts the run;
    results reordered canonically).  Kept as the baseline [bench/main.ml]
    measures the dynamic scheduler against — use {!run_parallel}. *)

val to_csv : ?timings:bool -> spec_result list -> string
(** [~timings:false] zeroes the wall-clock [time_ms] column, yielding
    byte-stable output for run-to-run comparisons (default [true]). *)

val of_csv : string -> spec_result list
(** Round-trips {!to_csv}; used to cache study runs on disk.  Blank lines
    and repeated headers are skipped; any other malformed line raises
    [Failure] naming the offending row (a truncated cache must fail
    loudly, not shed rows). *)

val aunit_suite : Benchmarks.Domains.t -> Specrepair_aunit.Aunit.test list
(** The domain's test suite, generated from the ground truth (memoized);
    shared by ARepair and ICEBAR, as the benchmark ships one suite per
    problem. *)
