(** The study runner: applies every technique to every benchmark variant
    and records REP / TM / SM per (variant, technique) — the raw data
    behind all tables and figures.

    Every (variant, technique) row runs in its own
    {!Specrepair_repair.Session.t} (shared per-domain oracle, per-technique
    budget, monotonic [time_ms]); [?deadline_ms] bounds each row and
    [?telemetry] receives one JSON line per row (schema in DESIGN.md) —
    the CSV schema itself never changes. *)

module Alloy = Specrepair_alloy
module Benchmarks = Specrepair_benchmarks

type spec_result = {
  variant_id : string;
  domain : string;
  benchmark : Benchmarks.Domains.benchmark;
  technique : string;
  rep : int;  (** 1 = command outcomes match the ground truth *)
  tm : float;  (** Token Match of the final candidate vs ground truth *)
  sm : float;  (** Syntax Match of the final candidate vs ground truth *)
  tool_claimed : bool;  (** the technique's own success verdict *)
  time_ms : float;  (** monotonic wall clock of the technique run *)
}

val run_one :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  Technique.t ->
  Benchmarks.Generate.variant ->
  spec_result

val run :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?techniques:Technique.t list ->
  ?progress:(string -> unit) ->
  Benchmarks.Generate.variant list ->
  spec_result list
(** Row-major: every technique applied to every variant. *)

val run_parallel :
  ?seed:int ->
  ?budget:Specrepair_repair.Common.budget ->
  ?deadline_ms:float ->
  ?telemetry:(string -> unit) ->
  ?techniques:Technique.t list ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  Benchmarks.Generate.variant list ->
  spec_result list
(** Like {!run} but fanned out over [jobs] forked worker processes
    (results identical to the sequential run, reordered canonically).
    Worker telemetry lines are replayed into [?telemetry] as each worker
    is reaped, so the sink sees every row exactly once. *)

val to_csv : spec_result list -> string
val of_csv : string -> spec_result list
(** Round-trips {!to_csv}; used to cache study runs on disk. *)

val aunit_suite : Benchmarks.Domains.t -> Specrepair_aunit.Aunit.test list
(** The domain's test suite, generated from the ground truth (memoized);
    shared by ARepair and ICEBAR, as the benchmark ships one suite per
    problem. *)
