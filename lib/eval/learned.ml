module Benchmarks = Specrepair_benchmarks
module Llm = Specrepair_llm

exception Corrupt_stats of string

type cell = { attempts : int; successes : int; total_ms : float }

type t = { cells : (string * string, cell) Hashtbl.t }

let empty () = { cells = Hashtbl.create 64 }
let is_empty t = Hashtbl.length t.cells = 0

let observe t ~defect_class ~technique ~repaired ~time_ms =
  let key = (defect_class, technique) in
  let prev =
    Option.value
      (Hashtbl.find_opt t.cells key)
      ~default:{ attempts = 0; successes = 0; total_ms = 0. }
  in
  Hashtbl.replace t.cells key
    {
      attempts = prev.attempts + 1;
      successes = (prev.successes + if repaired then 1 else 0);
      total_ms = prev.total_ms +. Float.max 0. time_ms;
    }

let cell t ~defect_class ~technique =
  Hashtbl.find_opt t.cells (defect_class, technique)

let cells t =
  Hashtbl.fold (fun (c, tech) v acc -> (c, tech, v) :: acc) t.cells []
  |> List.sort compare

(* {2 Defect classes} *)

(* The taxonomy of {!Benchmarks.Fault}: a multi-edit fault is "compound"
   whatever its operators; a single-edit fault is classed by the operator
   of its reverting edit. *)
let class_of_op op =
  List.find_opt
    (fun c -> List.mem op (Benchmarks.Fault.ops_of_class c))
    Benchmarks.Fault.classes

let defect_class_of_task (task : Llm.Task.t) =
  if List.length task.fault_paths > 1 then "compound"
  else
    match task.fault_classes with
    | op :: _ -> Option.value (class_of_op op) ~default:"unknown"
    | [] -> "unknown"

(* variant_id is "<domain>_<index>" ({!Benchmarks.Generate.variant_id});
   re-deriving the injected fault recovers its class for CSV rows, which
   carry no class column.  Memoized — studies repeat each variant across
   twelve techniques. *)
let class_cache : (string, string) Hashtbl.t = Hashtbl.create 256

let class_of_variant_id id =
  match Hashtbl.find_opt class_cache id with
  | Some c -> c
  | None ->
      let c =
        match String.rindex_opt id '_' with
        | None -> "unknown"
        | Some i -> (
            let dname = String.sub id 0 i in
            let index =
              int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
            in
            match
              ( index,
                List.find_opt
                  (fun (d : Benchmarks.Domains.t) -> d.name = dname)
                  Benchmarks.Domains.all )
            with
            | Some index, Some d -> (
                try (Benchmarks.Fault.inject ~seed:42 d ~index).class_name
                with _ -> "unknown")
            | _ -> "unknown")
      in
      Hashtbl.replace class_cache id c;
      c

(* {2 Mining} *)

(* Minimal extraction from the session telemetry JSONL: every field we
   need is either a flat string ("technique":"ATR") or a flat number
   ("elapsed_ms":12.345) — the schema {!Session.telemetry_json} emits. *)
let string_field line key =
  let needle = Printf.sprintf "\"%s\":\"" key in
  let nl = String.length needle and ll = String.length line in
  let rec find i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then
      let start = i + nl in
      match String.index_from_opt line start '"' with
      | Some stop -> Some (String.sub line start (stop - start))
      | None -> None
    else find (i + 1)
  in
  find 0

let number_field line key =
  let needle = Printf.sprintf "\"%s\":" key in
  let nl = String.length needle and ll = String.length line in
  let rec find i =
    if i + nl > ll then None
    else if String.sub line i nl = needle then begin
      let start = i + nl in
      let stop = ref start in
      while
        !stop < ll
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))
    end
    else find (i + 1)
  in
  find 0

let add_telemetry_line t line =
  match (string_field line "technique", string_field line "repaired") with
  | Some technique, Some repaired ->
      let defect_class =
        match string_field line "defect_class" with
        | Some c -> c
        | None -> (
            (* pre-panel telemetry carries no class field; recover it from
               the variant id *)
            match string_field line "variant_id" with
            | Some id -> class_of_variant_id id
            | None -> "unknown")
      in
      let time_ms =
        Option.value (number_field line "elapsed_ms") ~default:0.
      in
      observe t ~defect_class ~technique ~repaired:(repaired = "true")
        ~time_ms
  | _ -> () (* scheduler summaries, serve events: not study rows *)

let of_telemetry_file path =
  let t = empty () in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          add_telemetry_line t (input_line ic)
        done;
        assert false
      with End_of_file -> t)

let add_rows t rows =
  List.iter
    (fun (r : Study.spec_result) ->
      observe t
        ~defect_class:(class_of_variant_id r.variant_id)
        ~technique:r.technique ~repaired:(r.rep = 1) ~time_ms:r.time_ms)
    rows

let of_csv_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let t = empty () in
  add_rows t (Study.of_csv content);
  t

(* {2 Persistence}

   A line-oriented text format under an integrity digest:

     specrepair-stats v1 <md5 of payload>
     <class>|<technique>|<attempts>|<successes>|<total_ms>

   The portfolio trusts these numbers to order (and skip) repair
   techniques, so a stats file is rejected loudly — {!Corrupt_stats} —
   on any structural damage or digest mismatch rather than silently
   steering the scheduler with tampered rates. *)

let payload t =
  cells t
  |> List.map (fun (c, tech, v) ->
         Printf.sprintf "%s|%s|%d|%d|%.3f" c tech v.attempts v.successes
           v.total_ms)
  |> String.concat "\n"

let save t path =
  let body = payload t in
  let digest = Digest.to_hex (Digest.string body) in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Printf.fprintf oc "specrepair-stats v1 %s\n%s%s" digest body
    (if body = "" then "" else "\n");
  close_out oc;
  Sys.rename tmp path

let load path =
  let ic =
    try open_in path
    with Sys_error msg -> raise (Corrupt_stats ("unreadable stats: " ^ msg))
  in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    String.split_on_char '\n' content |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> raise (Corrupt_stats "empty stats file")
  | header :: rows -> (
      match String.split_on_char ' ' header with
      | [ "specrepair-stats"; "v1"; digest ] ->
          let body = String.concat "\n" rows in
          if Digest.to_hex (Digest.string body) <> digest then
            raise
              (Corrupt_stats
                 "digest mismatch: stats file was modified after writing");
          let t = empty () in
          List.iter
            (fun row ->
              match String.split_on_char '|' row with
              | [ c; tech; attempts; successes; total_ms ] -> (
                  match
                    ( int_of_string_opt attempts,
                      int_of_string_opt successes,
                      float_of_string_opt total_ms )
                  with
                  | Some a, Some s, Some ms
                    when a >= 0 && s >= 0 && s <= a && ms >= 0. ->
                      Hashtbl.replace t.cells (c, tech)
                        { attempts = a; successes = s; total_ms = ms }
                  | _ ->
                      raise
                        (Corrupt_stats ("malformed stats row: " ^ row)))
              | _ -> raise (Corrupt_stats ("malformed stats row: " ^ row)))
            rows;
          t
      | _ -> raise (Corrupt_stats ("bad stats header: " ^ header)))

(* {2 Ranking} *)

(* Expected value per millisecond, Laplace-smoothed so one lucky hit does
   not dominate: (successes+1)/(attempts+2) divided by the technique's
   mean cost on the class (floored at 1ms). *)
let score v =
  let rate =
    float_of_int (v.successes + 1) /. float_of_int (v.attempts + 2)
  in
  let mean_ms =
    Float.max 1. (v.total_ms /. float_of_int (max 1 v.attempts))
  in
  rate /. mean_ms

let rank t ~defect_class techniques =
  List.filter_map
    (fun tech ->
      match cell t ~defect_class ~technique:(Technique.name tech) with
      | Some v when v.attempts > 0 -> Some (tech, score v)
      | _ -> None)
    techniques
  |> List.stable_sort (fun (a, sa) (b, sb) ->
         match compare sb sa with
         | 0 -> compare (Technique.name a) (Technique.name b)
         | c -> c)
