module Benchmarks = Specrepair_benchmarks
module Metrics = Specrepair_metrics
module Llm = Specrepair_llm

let techniques_in results =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (r : Study.spec_result) ->
      if Hashtbl.mem seen r.technique then None
      else begin
        Hashtbl.add seen r.technique ();
        Some r.technique
      end)
    results

(* keep the paper's column order where possible *)
let ordered_techniques results =
  let present = techniques_in results in
  let canonical = List.map Technique.name Technique.all in
  List.filter (fun t -> List.mem t present) canonical
  @ List.filter (fun t -> not (List.mem t canonical)) present

let for_technique results technique =
  List.filter (fun (r : Study.spec_result) -> r.technique = technique) results

let rep_count results ~technique =
  List.fold_left
    (fun acc (r : Study.spec_result) -> acc + r.rep)
    0
    (for_technique results technique)

let rep_count_in results ~technique ~benchmark =
  List.fold_left
    (fun acc (r : Study.spec_result) ->
      if r.benchmark = benchmark then acc + r.rep else acc)
    0
    (for_technique results technique)

let mean f results ~technique =
  match for_technique results technique with
  | [] -> 0.
  | rs ->
      List.fold_left (fun acc r -> acc +. f r) 0. rs /. float_of_int (List.length rs)

let mean_tm = mean (fun (r : Study.spec_result) -> r.tm)
let mean_sm = mean (fun (r : Study.spec_result) -> r.sm)

(* per-variant match score vectors, aligned across techniques *)
let score_vectors results t1 t2 =
  let score (r : Study.spec_result) = (r.tm +. r.sm) /. 2. in
  let by_variant technique =
    let tbl = Hashtbl.create 256 in
    List.iter
      (fun (r : Study.spec_result) ->
        if r.technique = technique then Hashtbl.replace tbl r.variant_id (score r))
      results;
    tbl
  in
  let v1 = by_variant t1 and v2 = by_variant t2 in
  let shared =
    Hashtbl.fold
      (fun id s1 acc ->
        match Hashtbl.find_opt v2 id with
        | Some s2 -> (id, s1, s2) :: acc
        | None -> acc)
      v1 []
    |> List.sort compare
  in
  ( Array.of_list (List.map (fun (_, s, _) -> s) shared),
    Array.of_list (List.map (fun (_, _, s) -> s) shared) )

let correlation results ~t1 ~t2 =
  let xs, ys = score_vectors results t1 t2 in
  Metrics.Pearson.correlate xs ys

let repaired_set results technique =
  List.filter_map
    (fun (r : Study.spec_result) ->
      if r.technique = technique && r.rep = 1 then Some r.variant_id else None)
    results
  |> List.sort_uniq compare

let hybrid results ~traditional ~llm =
  let a = repaired_set results traditional in
  let b = repaired_set results llm in
  let overlap = List.length (List.filter (fun x -> List.mem x b) a) in
  (List.length a, overlap, List.length a + List.length b - overlap)

(* {2 Panel coverage} *)

(* The profile behind a study column label: Some "gemini-pro" for
   "Multi-Round_Auto@gemini-pro", Some "gpt-4" for the bare labels, None
   for traditional tools and foreign labels. *)
let profile_of_label label =
  match Technique.of_name label with
  | Some t ->
      Option.map
        (fun (p : Llm.Model.profile) -> p.name)
        (Technique.profile_of t)
  | None -> None

let union_sets sets = List.sort_uniq compare (List.concat sets)

let panel_coverage results =
  let labels = techniques_in results in
  let per_profile =
    List.filter_map
      (fun (p : Llm.Model.profile) ->
        let mine =
          List.filter (fun l -> profile_of_label l = Some p.name) labels
        in
        if mine = [] then None
        else
          Some
            ( p.name,
              List.length mine,
              union_sets (List.map (repaired_set results) mine) ))
      Llm.Model.panel
  in
  let union = union_sets (List.map (fun (_, _, s) -> s) per_profile) in
  (per_profile, union)

(* {2 Text rendering} *)

let domain_order =
  List.map (fun (d : Benchmarks.Domains.t) -> d.name) Benchmarks.Domains.all

let domains_in results =
  let present =
    List.sort_uniq compare
      (List.map (fun (r : Study.spec_result) -> r.domain) results)
  in
  List.filter (fun d -> List.mem d present) domain_order

let count_where results pred =
  List.fold_left
    (fun acc (r : Study.spec_result) -> if pred r then acc + r.rep else acc)
    0 results

let variants_of_domain results domain =
  List.sort_uniq compare
    (List.filter_map
       (fun (r : Study.spec_result) ->
         if r.domain = domain then Some r.variant_id else None)
       results)

let table1 results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "TABLE I: REP scores (specifications repaired) per technique\n\n";
  add "%-14s %6s" "Domain" "#spec";
  List.iter (fun t -> add " %14s" t) techniques;
  add "\n";
  let row label nspec count_for =
    add "%-14s %6d" label nspec;
    List.iter (fun t -> add " %14d" (count_for t)) techniques;
    add "\n"
  in
  let benches =
    [ (Benchmarks.Domains.A4F, "A4F benchmark");
      (Benchmarks.Domains.ARepair_bench, "ARepair benchmark") ]
  in
  List.iter
    (fun (bench, bench_label) ->
      let bench_results =
        List.filter (fun (r : Study.spec_result) -> r.benchmark = bench) results
      in
      if bench_results <> [] then begin
        add "-- %s --\n" bench_label;
        List.iter
          (fun domain ->
            let nspec = List.length (variants_of_domain bench_results domain) in
            if nspec > 0 then
              row domain nspec (fun t ->
                  count_where bench_results (fun r ->
                      r.domain = domain && r.technique = t)))
          (domains_in bench_results);
        let nspec =
          List.length
            (List.sort_uniq compare
               (List.map (fun (r : Study.spec_result) -> r.variant_id) bench_results))
        in
        row "Summary" nspec (fun t ->
            count_where bench_results (fun r -> r.technique = t))
      end)
    benches;
  let nspec =
    List.length
      (List.sort_uniq compare
         (List.map (fun (r : Study.spec_result) -> r.variant_id) results))
  in
  add "-- Total --\n";
  add "%-14s %6d" "Total" nspec;
  List.iter (fun t -> add " %14d" (rep_count results ~technique:t)) techniques;
  add "\n";
  Buffer.contents buf

let fig2 results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "FIGURE 2: similarity to ground truth (mean over all candidates)\n\n";
  add "%-24s %8s %8s\n" "Technique" "TM" "SM";
  List.iter
    (fun t ->
      add "%-24s %8.3f %8.3f\n" t (mean_tm results ~technique:t)
        (mean_sm results ~technique:t))
    techniques;
  Buffer.contents buf

let fig3 results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "FIGURE 3: Pearson correlation of per-spec match scores\n\n";
  add "%-24s" "";
  List.iter (fun t -> add " %10s" (String.sub t 0 (min 10 (String.length t)))) techniques;
  add "\n";
  let insignificant = ref 0 in
  List.iter
    (fun t1 ->
      add "%-24s" t1;
      List.iter
        (fun t2 ->
          let r, p = correlation results ~t1 ~t2 in
          if p >= 0.001 && t1 <> t2 then incr insignificant;
          add " %10.3f" r)
        techniques;
      add "\n")
    techniques;
  add "\n(%d off-diagonal pairs with p >= 0.001)\n" (!insignificant / 2);
  Buffer.contents buf

let table2 results =
  let techniques = ordered_techniques results in
  let traditional =
    List.filter
      (fun t -> List.mem t (List.map Technique.name Technique.traditional))
      techniques
  in
  let llms =
    List.filter
      (fun t -> List.mem t (List.map Technique.name Technique.llm_based))
      techniques
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "TABLE II: hybrid approaches (traditional + LLM)\n\n";
  add "%-10s %8s  %-24s %8s %8s %8s\n" "Trad." "repairs" "LLM technique"
    "repairs" "overlap" "union";
  List.iter
    (fun trad ->
      let trad_repairs = rep_count results ~technique:trad in
      List.iter
        (fun llm ->
          let llm_repairs = rep_count results ~technique:llm in
          let _, overlap, union = hybrid results ~traditional:trad ~llm in
          add "%-10s %8d  %-24s %8d %8d %8d\n" trad trad_repairs llm
            llm_repairs overlap union)
        llms)
    traditional;
  Buffer.contents buf

let summary results =
  let techniques = ordered_techniques results in
  let nspec =
    List.length
      (List.sort_uniq compare
         (List.map (fun (r : Study.spec_result) -> r.variant_id) results))
  in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "SUMMARY (%d specifications)\n\n" nspec;
  let ranked =
    List.sort
      (fun a b -> compare (snd b) (snd a))
      (List.map (fun t -> (t, rep_count results ~technique:t)) techniques)
  in
  add "Individual techniques by repairs:\n";
  List.iter
    (fun (t, c) ->
      add "  %-24s %5d (%.1f%%)\n" t c (100. *. float_of_int c /. float_of_int (max 1 nspec)))
    ranked;
  let traditional = List.map Technique.name Technique.traditional in
  let llms = List.map Technique.name Technique.llm_based in
  let best_hybrid =
    List.concat_map
      (fun tr ->
        List.map
          (fun llm ->
            let _, _, union = hybrid results ~traditional:tr ~llm in
            ((tr, llm), union))
          (List.filter (fun t -> List.mem t techniques) llms))
      (List.filter (fun t -> List.mem t techniques) traditional)
    |> List.sort (fun a b -> compare (snd b) (snd a))
  in
  (match best_hybrid with
  | ((tr, llm), union) :: _ ->
      add "\nBest hybrid: %s + %s = %d repairs (%.1f%%)\n" tr llm union
        (100. *. float_of_int union /. float_of_int (max 1 nspec))
  | [] -> ());
  add "\nMean runtime per attempt:\n";
  List.iter
    (fun t ->
      let rs = for_technique results t in
      let mean_ms =
        List.fold_left (fun acc (r : Study.spec_result) -> acc +. r.time_ms) 0. rs
        /. float_of_int (max 1 (List.length rs))
      in
      add "  %-24s %8.1f ms\n" t mean_ms)
    techniques;
  Buffer.contents buf

let panel_table results =
  let per_profile, union = panel_coverage results in
  let nspec =
    List.length
      (List.sort_uniq compare
         (List.map (fun (r : Study.spec_result) -> r.variant_id) results))
  in
  let pct n = 100. *. float_of_int n /. float_of_int (max 1 nspec) in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "TABLE III: model-panel coverage (union analysis across profiles)\n\n";
  add "%-14s %6s %8s %9s\n" "Profile" "techs" "repairs" "coverage";
  List.iter
    (fun (name, ntechs, set) ->
      add "%-14s %6d %8d %8.1f%%\n" name ntechs (List.length set)
        (pct (List.length set)))
    per_profile;
  let ntechs = List.fold_left (fun acc (_, n, _) -> acc + n) 0 per_profile in
  add "%-14s %6d %8d %8.1f%%\n" "Panel union" ntechs (List.length union)
    (pct (List.length union));
  let strictly =
    per_profile <> []
    && List.for_all
         (fun (_, _, set) -> List.length set < List.length union)
         per_profile
  in
  add "\nPanel union strictly exceeds every single profile: %b\n" strictly;
  Buffer.contents buf

let panel_table_csv results =
  let per_profile, union = panel_coverage results in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "profile,techniques,repairs\n";
  List.iter
    (fun (name, ntechs, set) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d\n" name ntechs (List.length set)))
    per_profile;
  let ntechs = List.fold_left (fun acc (_, n, _) -> acc + n) 0 per_profile in
  Buffer.add_string buf
    (Printf.sprintf "union,%d,%d\n" ntechs (List.length union));
  Buffer.contents buf

(* {2 CSV artifacts} *)

let table1_csv results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("benchmark,domain,n," ^ String.concat "," techniques ^ "\n");
  List.iter
    (fun (bench, label) ->
      let bench_results =
        List.filter (fun (r : Study.spec_result) -> r.benchmark = bench) results
      in
      List.iter
        (fun domain ->
          let n = List.length (variants_of_domain bench_results domain) in
          if n > 0 then begin
            Buffer.add_string buf (Printf.sprintf "%s,%s,%d" label domain n);
            List.iter
              (fun t ->
                Buffer.add_string buf
                  (Printf.sprintf ",%d"
                     (count_where bench_results (fun r ->
                          r.domain = domain && r.technique = t))))
              techniques;
            Buffer.add_char buf '\n'
          end)
        (domains_in bench_results))
    [ (Benchmarks.Domains.A4F, "A4F"); (Benchmarks.Domains.ARepair_bench, "ARepair") ];
  Buffer.contents buf

let fig2_csv results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "technique,tm,sm\n";
  List.iter
    (fun t ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.6f,%.6f\n" t (mean_tm results ~technique:t)
           (mean_sm results ~technique:t)))
    techniques;
  Buffer.contents buf

let fig3_csv results =
  let techniques = ordered_techniques results in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t1,t2,r,p\n";
  List.iter
    (fun t1 ->
      List.iter
        (fun t2 ->
          let r, p = correlation results ~t1 ~t2 in
          Buffer.add_string buf (Printf.sprintf "%s,%s,%.6f,%.6g\n" t1 t2 r p))
        techniques)
    techniques;
  Buffer.contents buf

let table2_csv results =
  let techniques = ordered_techniques results in
  let traditional =
    List.filter
      (fun t -> List.mem t (List.map Technique.name Technique.traditional))
      techniques
  in
  let llms =
    List.filter
      (fun t -> List.mem t (List.map Technique.name Technique.llm_based))
      techniques
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "traditional,trad_repairs,llm,llm_repairs,overlap,union\n";
  List.iter
    (fun trad ->
      List.iter
        (fun llm ->
          let trad_repairs, overlap, union = hybrid results ~traditional:trad ~llm in
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%s,%d,%d,%d\n" trad trad_repairs llm
               (rep_count results ~technique:llm)
               overlap union))
        llms)
    traditional;
  Buffer.contents buf
