(* The checkpoint manifest: a one-line JSON file recording which row
   ranges of a streamed run are complete.  Writes are atomic
   (write-then-rename); reads are strict (anything we would not have
   written ourselves raises [Corrupt]). *)

type t = {
  fingerprint : string;
  total : int;
  completed : (int * int) list;
}

exception Corrupt of string

let version = 1

let path ~dir = Filename.concat dir "manifest.json"

let create ~fingerprint ~total = { fingerprint; total; completed = [] }

(* {2 Ranges} *)

let rows_done t =
  List.fold_left (fun n (lo, hi) -> n + (hi - lo)) 0 t.completed

let is_complete t = rows_done t = t.total

let add t ~lo ~hi =
  if lo < 0 || hi > t.total || lo >= hi then
    invalid_arg
      (Printf.sprintf "Manifest.add: bad range [%d, %d) of %d" lo hi t.total);
  (* insert sorted; ranges stay 1:1 with the result shards on disk, so
     no coalescing — [shard_<lo>_<hi>.res] exists iff [(lo, hi)] does *)
  let rec insert = function
    | [] -> [ (lo, hi) ]
    | (a, b) :: rest when hi <= a -> (lo, hi) :: (a, b) :: rest
    | (a, b) :: rest when b <= lo -> (a, b) :: insert rest
    | (a, b) :: _ ->
        invalid_arg
          (Printf.sprintf "Manifest.add: [%d, %d) overlaps completed [%d, %d)"
             lo hi a b)
  in
  { t with completed = insert t.completed }

let pending t =
  let rec gaps cursor = function
    | [] -> if cursor < t.total then [ (cursor, t.total) ] else []
    | (lo, hi) :: rest ->
        if cursor < lo then (cursor, lo) :: gaps hi rest else gaps hi rest
  in
  gaps 0 t.completed

(* {2 Serialization}

   The JSON is fixed-shape, so the parser is a tiny strict scanner for
   exactly that shape rather than a general JSON reader: every deviation
   is [Corrupt], including trailing bytes. *)

let to_json t =
  Printf.sprintf
    "{\"specrepair_manifest\":%d,\"fingerprint\":%S,\"total\":%d,\"completed\":[%s]}"
    version t.fingerprint t.total
    (String.concat ","
       (List.map (fun (lo, hi) -> Printf.sprintf "[%d,%d]" lo hi) t.completed))

let save ~dir t =
  let final = path ~dir in
  let tmp = final ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_json t);
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp final

type cursor = { text : string; mutable pos : int }

let corrupt c fmt =
  Printf.ksprintf
    (fun msg -> raise (Corrupt (Printf.sprintf "%s (at byte %d)" msg c.pos)))
    fmt

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let expect c s =
  let n = String.length s in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = s then
    c.pos <- c.pos + n
  else corrupt c "expected %S" s

let parse_int c =
  let start = c.pos in
  (match peek c with Some '-' -> c.pos <- c.pos + 1 | _ -> ());
  while match peek c with Some '0' .. '9' -> true | _ -> false do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then corrupt c "expected an integer";
  match int_of_string_opt (String.sub c.text start (c.pos - start)) with
  | Some n -> n
  | None -> corrupt c "integer out of range"

(* Only what [%S] emits: printable ASCII with backslash escapes. *)
let parse_string c =
  expect c "\"";
  let buf = Buffer.create 32 in
  let rec go () =
    match peek c with
    | None -> corrupt c "unterminated string"
    | Some '"' -> c.pos <- c.pos + 1
    | Some '\\' -> (
        c.pos <- c.pos + 1;
        match peek c with
        | Some (('\\' | '"') as ch) ->
            Buffer.add_char buf ch;
            c.pos <- c.pos + 1;
            go ()
        | Some 'n' ->
            Buffer.add_char buf '\n';
            c.pos <- c.pos + 1;
            go ()
        | Some 't' ->
            Buffer.add_char buf '\t';
            c.pos <- c.pos + 1;
            go ()
        | _ -> corrupt c "unknown escape")
    | Some ch ->
        Buffer.add_char buf ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let of_json text =
  let c = { text; pos = 0 } in
  expect c "{\"specrepair_manifest\":";
  let v = parse_int c in
  if v <> version then
    raise (Corrupt (Printf.sprintf "unknown manifest version %d (want %d)" v version));
  expect c ",\"fingerprint\":";
  let fingerprint = parse_string c in
  expect c ",\"total\":";
  let total = parse_int c in
  if total < 0 then corrupt c "negative total";
  expect c ",\"completed\":[";
  let ranges = ref [] in
  (if peek c = Some ']' then c.pos <- c.pos + 1
   else
     let rec ranges_loop () =
       expect c "[";
       let lo = parse_int c in
       expect c ",";
       let hi = parse_int c in
       expect c "]";
       ranges := (lo, hi) :: !ranges;
       match peek c with
       | Some ',' ->
           c.pos <- c.pos + 1;
           ranges_loop ()
       | _ -> expect c "]"
     in
     ranges_loop ());
  expect c "}";
  (match peek c with
  | None -> ()
  | Some '\n' when c.pos = String.length text - 1 -> ()
  | Some _ -> corrupt c "trailing bytes after manifest object");
  let completed = List.rev !ranges in
  let rec check prev = function
    | [] -> ()
    | (lo, hi) :: rest ->
        if lo < 0 || hi > total || lo >= hi then
          raise
            (Corrupt
               (Printf.sprintf "malformed range [%d, %d) of %d" lo hi total));
        if lo < prev then
          raise
            (Corrupt
               (Printf.sprintf "ranges unsorted or overlapping at [%d, %d)" lo
                  hi));
        check hi rest
  in
  check 0 completed;
  { fingerprint; total; completed }

let load ~dir =
  let p = path ~dir in
  let text =
    match open_in_bin p with
    | exception Sys_error msg -> raise (Corrupt ("cannot read manifest: " ^ msg))
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
  in
  try of_json text
  with Corrupt msg -> raise (Corrupt (Printf.sprintf "%s: %s" p msg))

let () =
  Printexc.register_printer (function
    | Corrupt msg -> Some ("Manifest.Corrupt: " ^ msg)
    | _ -> None)
