(** The twelve repair techniques of the study: four traditional tools, five
    Single-Round prompt settings, three Multi-Round feedback settings — the
    LLM-based eight parameterized by the {!Llm.Model.panel} profile that
    answers the prompts. *)

module Llm = Specrepair_llm

type t =
  | ARepair
  | ICEBAR
  | BeAFix
  | ATR
  | Single of Llm.Prompt.single_setting * Llm.Model.profile
  | Multi of Llm.Multi_round.feedback * Llm.Model.profile

val all : t list
(** In the paper's column order, with the default [gpt4] profile. *)

val traditional : t list

val llm_based : t list
(** The eight LLM techniques under the default [gpt4] profile. *)

val llm_for : Llm.Model.profile -> t list
(** The eight LLM techniques under a specific panel profile. *)

val profile_of : t -> Llm.Model.profile option
(** The panel profile of an LLM technique; [None] for traditional tools. *)

val with_profile : Llm.Model.profile -> t -> t
(** Re-target an LLM technique at another profile (identity on traditional
    tools). *)

val name : t -> string
(** Column label as printed in the tables, e.g. "Single-Round_Loc+Fix".
    Non-default profiles are suffixed: "Multi-Round_Auto@gemini-pro". *)

val of_name : string -> t option
(** Inverse of {!name}, including "@<profile>"-suffixed labels. *)
