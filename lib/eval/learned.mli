(** Telemetry-learned technique statistics for the hybrid portfolio.

    Mines the session telemetry JSONL (and study CSVs) accumulated since
    the engine gained telemetry into per-(defect-class × technique)
    success/cost cells.  {!Portfolio.repair_learned} ranks techniques for
    a task's defect class by expected value per millisecond and races the
    top of the ranking under one session deadline; with no statistics for
    the class it falls back — explicitly, and bit-identically — to the
    static two-stage pipeline.

    {b Trust.}  A stats file steers which repair engines run at all, so
    persistence carries an integrity digest and {!load} raises
    {!Corrupt_stats} on any tampering or structural damage — a damaged
    file must never silently reorder the portfolio. *)

module Llm = Specrepair_llm

exception Corrupt_stats of string

type cell = {
  attempts : int;
  successes : int;  (** rows whose technique repaired (REP for CSVs) *)
  total_ms : float;  (** summed wall-clock of the attempts *)
}

type t
(** Mutable accumulator keyed on (defect class, technique label). *)

val empty : unit -> t
val is_empty : t -> bool

val observe :
  t ->
  defect_class:string ->
  technique:string ->
  repaired:bool ->
  time_ms:float ->
  unit

val cell : t -> defect_class:string -> technique:string -> cell option

val cells : t -> (string * string * cell) list
(** Sorted (class, technique, cell) triples — the persisted payload. *)

val defect_class_of_task : Llm.Task.t -> string
(** The {!Specrepair_benchmarks.Fault} taxonomy label for a repair task:
    ["compound"] when more than one fault path is carried, else the class
    of the reverting operator, else ["unknown"]. *)

val class_of_variant_id : string -> string
(** Re-derives the injected fault's class from a benchmark variant id
    (memoized); ["unknown"] for foreign ids. *)

val add_telemetry_line : t -> string -> unit
(** Folds one telemetry JSONL line in; non-study lines (scheduler
    summaries, serve events) are ignored. *)

val of_telemetry_file : string -> t

val add_rows : t -> Study.spec_result list -> unit
(** Study CSV rows; success is [rep = 1]. *)

val of_csv_file : string -> t
(** {!Study.of_csv} of the file, folded with {!add_rows}. *)

val save : t -> string -> unit
(** Atomic write (temp + rename) of the digest-protected text format
    documented in DESIGN.md. *)

val load : string -> t
(** Raises {!Corrupt_stats} on a missing/unreadable file, a bad header, a
    malformed row, inconsistent counts, or a digest mismatch. *)

val score : cell -> float
(** Laplace-smoothed success rate divided by mean cost (ms, floored at
    1): the expected-value-per-millisecond ordering key. *)

val rank :
  t -> defect_class:string -> Technique.t list -> (Technique.t * float) list
(** The given techniques with statistics for the class, best first;
    deterministic tie-break on the technique label.  Empty when the class
    was never observed — the cold-start signal. *)
