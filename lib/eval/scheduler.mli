(** A dynamic, fault-tolerant work scheduler over forked worker processes.

    The parent keeps a chunked queue of work-item indices; workers pull
    chunks over a per-worker pipe, evaluate each item, and publish every
    finished chunk as an atomically-renamed result file.  Slow chunks no
    longer pin a static slice to one worker (chunk sizes shrink as the
    queue drains, so stragglers even out), and a worker that dies — crash,
    [kill -9], or a silent heartbeat — costs one chunk of recompute, not
    the run: the parent requeues the dead worker's in-flight chunk (with a
    bounded retry count) and respawns a replacement.

    Protocol, heartbeat and retry semantics are documented in DESIGN.md
    ("The work-stealing study scheduler"). *)

type stats = Specrepair_engine.Telemetry.Scheduler.t

exception Chunk_failed of { indices : int list; attempts : int; reason : string }
(** A chunk exhausted its retry budget ([indices] are the work items it
    carried), or a worker reported a deterministic evaluation error. *)

val map :
  jobs:int ->
  ?max_retries:int ->
  ?heartbeat_timeout_ms:float ->
  ?progress:(string -> unit) ->
  ?emit:(string -> unit) ->
  f:(emit:(string -> unit) -> int -> string) ->
  int ->
  string array * stats
(** [map ~jobs ~f n] evaluates [f i] for every [i < n] across [jobs]
    forked workers and returns the results in index order, plus the
    scheduler's counters.  [f] runs in the worker process; it must return
    a single line (no ['\n']) and may call its [emit] argument with
    sideband lines (telemetry) that the parent forwards to [?emit] when
    the chunk is merged.  [f] must be deterministic: a retried chunk
    re-evaluates its items from scratch.

    [?max_retries] (default 2) bounds requeues per chunk; exhausting it
    raises {!Chunk_failed} naming the offending work items.
    [?heartbeat_timeout_ms] (default 300_000) is how long a worker may go
    without finishing an item before the parent presumes it hung and
    kills it.  [jobs] is clamped to [n]; [jobs <= 1] still forks (use the
    caller's sequential path to avoid forking entirely). *)

val map_checkpointed :
  jobs:int ->
  ?max_retries:int ->
  ?heartbeat_timeout_ms:float ->
  ?progress:(string -> unit) ->
  ?emit:(string -> unit) ->
  ?resume:bool ->
  dir:string ->
  fingerprint:string ->
  f:(emit:(string -> unit) -> int -> string) ->
  int ->
  stats
(** The streaming twin of {!map}: same worker pool, chunk protocol and
    fault tolerance, but results never enter parent memory.  Each
    verified chunk is kept as a result shard [shard_<lo>_<hi>.res] in
    [dir] and its range recorded in the atomically-replaced checkpoint
    manifest [dir/manifest.json] ({!Manifest}) — shard rename first,
    manifest second, so the manifest only ever vouches for shards that
    exist.  Parent memory is O(jobs + pending ranges) whatever [n].

    With [~resume:true] the manifest is loaded, validated against
    [fingerprint] and [n], every recorded shard re-checked, and only the
    pending complement computed; a truncated or tampered checkpoint
    raises {!Manifest.Corrupt} (never a silent re-run or skip).  Without
    [~resume], a directory already holding a non-empty checkpoint is
    refused.  Progress lines carry this run's rows/s and an ETA.  Read
    the rows back with {!fold_shards}. *)

val fold_shards : dir:string -> ('a -> int -> string -> 'a) -> 'a -> 'a
(** [fold_shards ~dir f acc] streams every result row of a {e complete}
    checkpointed run to [f] in global row order, one shard in memory at
    a time (the lazy merge).  Fails if the run is incomplete; raises
    {!Manifest.Corrupt} if the checkpoint cannot be trusted. *)
