(** The checkpoint manifest of a streamed study run.

    A run directory holds one [manifest.json] plus one result shard per
    completed chunk ([shard_<lo>_<hi>.res], half-open row ranges).  The
    manifest is the single source of truth for what is done: a range is
    recorded only {e after} its shard has been atomically renamed into
    place and cross-checked, and the manifest itself is replaced by an
    atomic write-then-rename — so at every instant the directory is
    either the old checkpoint or the new one, never a torn mix.

    Trust story: on [--resume] the manifest must parse exactly
    (version, fingerprint, total, sorted disjoint ranges) {e and} every
    recorded range must still have a parseable shard with the right
    rows.  Any deviation raises {!Corrupt} naming the problem: a
    checkpoint we cannot fully vouch for is an error the operator must
    see, never a silent re-run (wasting the night) or a silent skip
    (publishing a CSV with holes). *)

type t = {
  fingerprint : string;
      (** identifies the run's parameters (corpus source, seed, total,
          techniques, solving options); a resume under different
          parameters must not mix rows *)
  total : int;  (** the run's row count; ranges live in [\[0, total)] *)
  completed : (int * int) list;
      (** sorted, disjoint half-open ranges, one per shard file *)
}

exception Corrupt of string
(** The manifest (or a shard it vouches for) cannot be trusted; the
    payload says exactly why and names the offending file. *)

val path : dir:string -> string
(** [dir/manifest.json]. *)

val create : fingerprint:string -> total:int -> t

val load : dir:string -> t
(** Strict parse of [manifest.json].  Raises {!Corrupt} on unreadable or
    truncated files, unknown versions, missing fields, malformed ranges
    (unsorted, overlapping, out of bounds) — anything short of a
    checkpoint this module itself would have written. *)

val save : dir:string -> t -> unit
(** Atomic replace: serialize to [manifest.json.tmp], then rename over
    [manifest.json]. *)

val add : t -> lo:int -> hi:int -> t
(** Record [\[lo, hi)] as completed.  Ranges are kept sorted and exactly
    as recorded (never coalesced), so each entry names its shard file
    [shard_<lo>_<hi>.res] on disk.  Overlap is [Invalid_argument]. *)

val rows_done : t -> int
val is_complete : t -> bool

val pending : t -> (int * int) list
(** The complement of [completed] in [\[0, total)], sorted. *)

val to_json : t -> string
(** One-line JSON; what {!save} writes and {!load} parses. *)
