(** Reference bounded model finder: exhaustive enumeration of the instance
    space checked by direct evaluation.

    Where {!Specrepair_solver.Analyzer} compiles to CNF and runs CDCL, this
    oracle walks every assignment of the {!Space} bits and asks
    {!Specrepair_alloy.Eval} whether facts, implicit constraints, scope caps
    and the goal hold.  Exponential, so only usable on the tiny
    specifications the fuzzer generates — which is exactly the
    bounded-exhaustive ground-truth technique the repair literature leans
    on. *)

module Alloy = Specrepair_alloy

type verdict =
  | Found of Alloy.Instance.t  (** first satisfying instance in mask order *)
  | No_instance
  | Too_big  (** space exceeds [max_bits]; caller should skip the check *)

val default_max_bits : int
(** 14: at most 16384 candidate instances per query. *)

val find :
  ?max_bits:int ->
  Alloy.Typecheck.env ->
  Specrepair_solver.Bounds.scope ->
  Alloy.Ast.fmla ->
  verdict
(** Is there an instance within scope satisfying
    [implicit /\ facts /\ caps /\ goal]?  Symmetry breaking on the SAT side
    removes only isomorphic models (specifications cannot name atoms), so
    [Found]/[No_instance] must agree exactly with the analyzer's
    [Sat]/[Unsat]. *)
