type t = { mutable state : int64 }

let create seed = { state = seed }

(* FNV-1a over the seed and the context path: cheap, stable, and spreads
   nearby seeds / iteration indices into unrelated streams. *)
let of_context ~seed path =
  let h = ref 0xcbf29ce484222325L in
  let mix byte =
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L
  in
  String.iter (fun c -> mix (Char.code c)) (string_of_int seed);
  List.iter
    (fun s ->
      mix 0x1f;
      String.iter (fun c -> mix (Char.code c)) s)
    path;
  create !h

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

let range t lo hi = lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let chance t p = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11)
                 *. 0x1.p-53 < p

let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let sample t n xs =
  let len = List.length xs in
  if len = 0 || n <= 0 then []
  else begin
    (* draw n indices, dedup, keep original order *)
    let picked = Hashtbl.create 16 in
    for _ = 1 to n do
      Hashtbl.replace picked (int t len) ()
    done;
    List.filteri (fun i _ -> Hashtbl.mem picked i) xs
  end
