(** The differential fuzzing campaigns: generate, cross-check, shrink,
    persist.

    Nine targets, each pitting a production component against an
    independent reference:

    - [Sat_target] — the CDCL solver vs. the DPLL reference
      ({!Ref_sat}), plain, under assumptions, under [max_conflicts]
      budgets, and incrementally across clause additions; models are
      checked against the clauses and unsat-cores against the assumption
      set.
    - [Solver_target] — [Translate] + CDCL bounded model finding vs. the
      exhaustive enumeration finder ({!Ref_models}); [Sat] instances are
      additionally re-checked by direct evaluation.
    - [Oracle_target] — the incremental, assumption-guarded
      [Solver.Oracle] vs. fresh [Analyzer] solves over mutation-derived
      candidate streams, including repeat queries (cache coherence).
    - [Eval_target] — [Alloy.Eval] vs. the translation pinned to a
      concrete random instance, for both goal formulas and the
      facts/implicit conjunction.
    - [Proof_target] — the CDCL solver's DRUP proof log vs. the
      independent checker ({!Specrepair_sat.Drat}): every random CNF is
      solved with logging on, the steps must survive a round-trip through
      a randomly chosen on-disk format, and the checker must accept the
      certificate (a conflict derivation for Unsat, plain RUP-ness of
      every step otherwise).  Under [SPECREPAIR_FUZZ_CHAOS=drop-clause]
      the proof is tampered with before checking, so a correct checker
      {e rejects} and the hook trips as a discrepancy.
    - [Simplify_target] — the proof-preserving inprocessing driver
      ({!Specrepair_sat.Simplify}) vs. the DPLL reference: the verdict
      must agree, a reconstructed model (variable elimination undone)
      must satisfy the {e original} clauses, and the emitted Add/Delete
      stream must be accepted by the DRUP checker against the original
      CNF as premises.  Under [SPECREPAIR_FUZZ_CHAOS=corrupt-simplify]
      one clause is strengthened without a justifying proof step, and the
      checker (or the model/verdict comparison) must trip.
    - [Parse_target] — the frontend ({!Specrepair_alloy.Parser}) vs. the
      pretty printer ({!Specrepair_alloy.Pretty.source}): a generated
      spec's printed source must parse, parse ∘ print must be a fixpoint
      from the first parse on, and the result must still type-check.
      Under [SPECREPAIR_FUZZ_CHAOS=corrupt-token] one token of the
      printed source is replaced with garbage and the frontend must
      reject it with a diagnostic positioned exactly at the corruption —
      the one chaos hook under which a correct implementation makes the
      campaign {e pass}, because rejection is the desired behaviour.
    - [Stream_target] — the streaming corpus producer
      ({!Specrepair_eval.Corpus_stream}): a seed range cut at random
      interior points must yield, segment by segment, exactly the rows of
      the unsplit range (the invariant checkpoint/resume relies on, since
      a resumed run's chunk boundaries never match the crashed run's),
      and streaming the same range twice must be bit-identical.  Mostly
      the fuzz-generated source ({!Stream_source}); one case in eight
      hits the real injected benchmark corpus, including ranges that
      straddle the epoch boundary.
    - [Panel_target] — fuzzed repair tasks pushed through {e every}
      profile of the simulated-LLM panel ({!Specrepair_llm.Model.panel}):
      each sampled proposal must be well-typed, must differ from the
      faulty spec, and must respect the guidance blocklist (grown with
      every accepted proposal, so the property is never vacuous).  Under
      [SPECREPAIR_FUZZ_CHAOS=corrupt-stats] the target instead feeds the
      learned portfolio a tampered statistics file: a pristine save must
      round-trip, and an appended row, flipped digits, or truncation must
      all raise {!Specrepair_eval.Learned.Corrupt_stats} — like
      [corrupt-token], a correct implementation makes the chaos campaign
      {e pass}, because loud rejection is the desired behaviour.

    Every iteration derives its own {!Rng} stream from (seed, target,
    iteration index), so campaigns are bit-reproducible and every failure
    is replayable from the summary alone.  Discrepancies are shrunk
    ({!Shrink}) and persisted ({!Corpus}) before being counted. *)

type target =
  | Sat_target
  | Solver_target
  | Oracle_target
  | Eval_target
  | Proof_target
  | Simplify_target
  | Parse_target
  | Stream_target
  | Panel_target

val all_targets : target list

val target_name : target -> string
(** CLI spelling: ["sat"], ["solver"], ["oracle"], ["eval"], ["proof"],
    ["simplify"], ["parse"], ["stream"], ["panel"]. *)

type report = {
  target : string;
  seed : int;
  iters : int;
  checks : int;  (** iterations that ran a full differential comparison *)
  skipped : int;  (** instance space exceeded the enumeration cap *)
  discrepancies : int;
  corpus : string list;  (** paths of persisted shrunk failures *)
}

val run :
  ?corpus_dir:string -> target -> seed:int -> iters:int -> unit -> report
(** Runs one campaign.  [corpus_dir] (default ["artifacts/fuzz"]) receives
    one shrunk [.cnf]/[.als] entry per discrepancy. *)

val report_json : report -> string
(** One-line JSON object; deterministic (no wall-clock fields), so two
    runs with the same seed are byte-identical. *)

val summary_json : corpus_dir:string -> seed:int -> report list -> string
(** The per-run JSON summary the CLI prints. *)

val replay : string -> (unit, string) result
(** Re-runs the differential checks on one corpus entry: [.cnf] files go
    through the SAT cross-check (with their recorded assumptions), a
    proof-logged solve whose certificate must check, and — when the entry
    recorded no assumptions — the simplify cross-check; [.als] files through
    the frontend round-trip plus the model-finder and oracle cross-checks
    for every command.  [Error] describes the first disagreement. *)

val replay_dir : string -> (string * (unit, string) result) list
(** {!replay} over {!Corpus.files}. *)
