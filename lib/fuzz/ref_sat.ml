open Specrepair_sat

type result = Sat of bool array | Unsat

let chaos_clauses clauses =
  match Sys.getenv_opt "SPECREPAIR_FUZZ_CHAOS" with
  | Some "drop-clause" -> (
      match List.rev clauses with [] -> [] | _ :: rest -> List.rev rest)
  | _ -> clauses

(* Assignment cells: 0 unassigned, 1 true, -1 false. *)
let value_of assign l =
  match assign.(Lit.var l) with
  | 0 -> None
  | v -> Some (if Lit.sign l then v > 0 else v < 0)

let assign_lit assign l =
  assign.(Lit.var l) <- (if Lit.sign l then 1 else -1)

(* One pass of unit propagation; [`Conflict], [`Fixpoint], or [`Progress]. *)
let propagate_once assign clauses =
  let progress = ref false in
  let conflict = ref false in
  List.iter
    (fun clause ->
      if not !conflict then begin
        let satisfied = List.exists (fun l -> value_of assign l = Some true) clause in
        if not satisfied then
          match List.filter (fun l -> value_of assign l = None) clause with
          | [] -> conflict := true
          | [ unit_lit ] ->
              assign_lit assign unit_lit;
              progress := true
          | _ -> ()
      end)
    clauses;
  if !conflict then `Conflict else if !progress then `Progress else `Fixpoint

let rec propagate assign clauses =
  match propagate_once assign clauses with
  | `Conflict -> false
  | `Fixpoint -> true
  | `Progress -> propagate assign clauses

let rec dpll assign clauses n =
  if not (propagate assign clauses) then None
  else
    let rec first_unassigned v = if v >= n then None else if assign.(v) = 0 then Some v else first_unassigned (v + 1) in
    match first_unassigned 0 with
    | None -> Some assign
    | Some v ->
        let try_branch sign =
          let branch = Array.copy assign in
          branch.(v) <- (if sign then 1 else -1);
          dpll branch clauses n
        in
        (match try_branch true with
        | Some m -> Some m
        | None -> try_branch false)

let solve ?(assumptions = []) (cnf : Dimacs.cnf) =
  let clauses = chaos_clauses cnf.Dimacs.clauses in
  let n = cnf.Dimacs.num_vars in
  (* assumptions may name variables beyond the clause set *)
  let width =
    List.fold_left (fun w l -> max w (Lit.var l + 1)) (max n 1) assumptions
  in
  let assign = Array.make width 0 in
  let contradictory =
    List.exists
      (fun l ->
        match value_of assign l with
        | Some false -> true
        | _ ->
            assign_lit assign l;
            false)
      assumptions
  in
  if contradictory then Unsat
  else
    match dpll assign clauses width with
    | None -> Unsat
    | Some m -> Sat (Array.map (fun v -> v > 0) (Array.sub m 0 (max n 1)))

let model_satisfies model clauses =
  List.for_all
    (fun clause ->
      List.exists
        (fun l ->
          let v = model.(Lit.var l) in
          if Lit.sign l then v else not v)
        clause)
    clauses
