(** Independent reference SAT checker: recursive DPLL with unit propagation
    and nothing else — no watched literals, no learning, no heuristics.

    Deliberately shares no code with {!Specrepair_sat.Solver}; on the small
    formulas the fuzzer generates it is fast enough and its simplicity is
    the point: a disagreement between the two implicates the CDCL solver
    with high probability.

    Test hook: when the environment variable [SPECREPAIR_FUZZ_CHAOS] is set
    to ["drop-clause"], the checker silently ignores the last clause of
    every problem.  This deliberately corrupts the reference so the harness,
    shrinker and corpus paths can be exercised end to end; it must never be
    set outside tests. *)

open Specrepair_sat

type result = Sat of bool array | Unsat

val solve : ?assumptions:Lit.t list -> Dimacs.cnf -> result
(** Complete (no budget): always answers.  The model array covers
    [cnf.num_vars] variables, unconstrained ones read [false]. *)

val model_satisfies : bool array -> Lit.t list list -> bool
(** Does the assignment satisfy every clause? *)
