(** Greedy first-improvement shrinking of failing fuzz inputs.

    Each candidate function proposes strictly smaller variants of an input;
    {!run} repeatedly commits the first variant on which the failure
    predicate still holds, until a fixpoint or the step budget.  All
    candidate orders are deterministic, so shrunk corpus entries are
    reproducible from the seed. *)

open Specrepair_sat
module Ast = Specrepair_alloy.Ast

val run : ?max_steps:int -> ('a -> 'a list) -> ('a -> bool) -> 'a -> 'a
(** [run candidates still_fails x]: [x] must satisfy [still_fails]; the
    result does too.  Default budget 400 predicate evaluations. *)

val cnf_candidates : Dimacs.cnf -> Dimacs.cnf list
(** Drop one clause, then drop one literal of one clause.  [num_vars] is
    kept so assumption literals stay in range. *)

val fmla_candidates : Ast.fmla -> Ast.fmla list
(** Replace any subformula by [True], [False], or one of its own
    formula-valued children. *)

val spec_candidates : Ast.spec -> Ast.spec list
(** Drop one fact, or apply {!fmla_candidates} inside one fact, predicate
    or assertion body.  Signatures and commands are preserved (commands may
    reference predicates and assertions by name). *)
