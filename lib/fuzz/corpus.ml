open Specrepair_sat
module Alloy = Specrepair_alloy

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let save_cnf ~dir ~name ~seed ~assumptions cnf =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".cnf") in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "c specrepair fuzz regression %s (seed %d)\n" name seed);
  if assumptions <> [] then
    Buffer.add_string buf
      (Printf.sprintf "c assumptions: %s\n"
         (String.concat " "
            (List.map (fun l -> string_of_int (Lit.to_dimacs l)) assumptions)));
  Buffer.add_string buf (Format.asprintf "%a" Dimacs.print cnf);
  write_file path (Buffer.contents buf);
  path

let save_spec ~dir ~name ~seed spec =
  mkdir_p dir;
  let path = Filename.concat dir (name ^ ".als") in
  write_file path
    (Printf.sprintf "// specrepair fuzz regression %s (seed %d)\n%s" name seed
       (Alloy.Pretty.spec_to_string spec));
  path

let load_cnf path =
  let text = read_file path in
  let assumptions =
    String.split_on_char '\n' text
    |> List.find_map (fun line ->
           let prefix = "c assumptions: " in
           if String.length line >= String.length prefix
              && String.sub line 0 (String.length prefix) = prefix
           then
             Some
               (String.sub line (String.length prefix)
                  (String.length line - String.length prefix)
               |> String.split_on_char ' '
               |> List.filter (( <> ) "")
               |> List.map (fun tok -> Lit.of_dimacs (int_of_string tok)))
           else None)
    |> Option.value ~default:[]
  in
  (Dimacs.parse text, assumptions)

let load_spec path =
  Alloy.Typecheck.check (Alloy.Parser.parse (read_file path))

let files dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".cnf" || Filename.check_suffix f ".als")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
