(** The bounded instance space of a specification under a command scope:
    which (relation, tuple) memberships exist, independently of the SAT
    translation.

    This mirrors the universe construction of {!Specrepair_solver.Bounds}
    (top-level signature atom pools of the commanded scope, signature
    membership over the root pool, field tuples over the owner/column root
    pools) but builds no solver and allocates no variables: an instance is
    just an assignment of one bit per cell.  The exhaustive reference model
    finder enumerates these assignments; the instance generator samples
    them.

    Sharing the space *definition* with the production bounds is
    intentional — bounded model finding is only comparable when both sides
    agree on what "within scope" means — while the *decision procedures*
    (CDCL + Tseitin + relational compilation vs. enumeration + direct
    evaluation) stay fully independent. *)

module Alloy = Specrepair_alloy

type t = {
  env : Alloy.Typecheck.env;
  pools : (string * string list) list;  (** top-level sig -> atom pool *)
  cells : (string * Alloy.Instance.Tuple.t array) list;
      (** per relation (sigs then fields, declaration order), its tuple
          space *)
  n_bits : int;  (** total cells; the enumeration is [2^n_bits] masks *)
  caps : (string * int) list;
      (** child-signature scope caps ([for n but k Sub] on a non-top sig) *)
}

val create : Alloy.Typecheck.env -> Specrepair_solver.Bounds.scope -> t

val instance_of_mask : t -> (int -> bool) -> Alloy.Instance.t
(** Instance whose cell [i] is a member exactly when [bit i] holds; bits
    are indexed in [cells] order. *)

val caps_hold : t -> Alloy.Instance.t -> bool
(** Do the child-signature scope caps hold in the instance? *)
