(** Random well-typed inputs for the differential fuzzer.

    Everything is a deterministic function of the {!Rng} stream it is
    handed.  Specification generation reuses the mutation engine's typed
    expression pool ({!Specrepair_mutation.Pool}) for leaf expressions and
    atomic formulas, so generated constraints range over the same grammar
    the repair tools search. *)

open Specrepair_sat
module Alloy = Specrepair_alloy

val cnf : Rng.t -> Dimacs.cnf
(** 1–10 variables, 0–35 clauses of 1–4 literals. *)

val assumptions : Rng.t -> num_vars:int -> Lit.t list
(** 0–3 assumption literals over the problem's variables. *)

val spec : ?with_commands:bool -> Rng.t -> Alloy.Typecheck.env
(** A small type-checked specification: 1–2 top-level signatures, an
    optional subsignature, 0–2 binary fields, 0–2 facts, an optional
    predicate and assertion.  With [with_commands], 1–2 run/check commands
    are attached (the shape the oracle target needs). *)

val source : ?with_commands:bool -> Rng.t -> string
(** Concrete Alloy 4.2 source of a generated spec
    ({!Specrepair_alloy.Pretty.source} of {!spec}), the input of the
    frontend round-trip fuzz target. *)

val scope :
  ?child_caps:bool -> Rng.t -> Alloy.Typecheck.env -> Specrepair_solver.Bounds.scope
(** Default scope 1–2 with occasional top-signature overrides and (unless
    [child_caps] is [false]) child-signature caps. *)

val fmla :
  Rng.t ->
  Alloy.Typecheck.env ->
  vars:(string * int) list ->
  depth:int ->
  Alloy.Ast.fmla
(** A well-typed formula: pool atoms and cardinality tests under random
    connectives and quantifiers; calls the spec's predicate when one
    exists. *)

val instance : Rng.t -> Specrepair_solver.Bounds.t -> Alloy.Instance.t
(** A random instance within the bounds' cell space.  Respects [extends]
    containment (a subsignature's atoms are drawn from its parent's) so
    that [Univ] agrees between the evaluator and the translation; all other
    implicit constraints are deliberately left to chance. *)
