module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Bounds = Specrepair_solver.Bounds

type t = {
  env : Alloy.Typecheck.env;
  pools : (string * string list) list;
  cells : (string * Alloy.Instance.Tuple.t array) list;
  n_bits : int;
  caps : (string * int) list;
}

(* Same syntactic over-approximation as Bounds.pool_of_expr: the root pools
   of the signatures an expression mentions, or the whole universe. *)
let rec sig_names_of_expr (env : Alloy.Typecheck.env) = function
  | Ast.Rel n -> if Ast.find_sig env.spec n <> None then [ n ] else []
  | Ast.Univ | Ast.Iden | Ast.None_ -> []
  | Ast.Unop (_, e) -> sig_names_of_expr env e
  | Ast.Binop (_, a, b) -> sig_names_of_expr env a @ sig_names_of_expr env b
  | Ast.Ite (_, a, b) -> sig_names_of_expr env a @ sig_names_of_expr env b
  | Ast.Compr (decls, _) ->
      List.concat_map (fun (_, e) -> sig_names_of_expr env e) decls

let pool_of_expr env pools universe e =
  match sig_names_of_expr env e with
  | [] -> universe
  | names ->
      let roots =
        List.sort_uniq String.compare
          (List.map (Alloy.Typecheck.root_of env) names)
      in
      List.concat_map
        (fun r -> Option.value ~default:[] (List.assoc_opt r pools))
        roots

let rec cartesian = function
  | [] -> [ [] ]
  | pool :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun a -> List.map (fun t -> a :: t) tails) pool

let create (env : Alloy.Typecheck.env) (scope : Bounds.scope) =
  let spec = env.spec in
  let pools =
    List.map
      (fun top ->
        let n =
          match List.assoc_opt top scope.Bounds.overrides with
          | Some k -> k
          | None -> scope.Bounds.default
        in
        (top, List.init n (Alloy.Instance.atom_name top)))
      env.top_sigs
  in
  let universe = List.concat_map snd pools in
  let sig_cells =
    List.map
      (fun (s : Ast.sig_decl) ->
        let root = Alloy.Typecheck.root_of env s.sig_name in
        let pool = Option.value ~default:[] (List.assoc_opt root pools) in
        (s.sig_name, Array.of_list (List.map (fun a -> [| a |]) pool)))
      spec.sigs
  in
  let field_cells =
    List.concat_map
      (fun (s : Ast.sig_decl) ->
        let owner_pool = pool_of_expr env pools universe (Ast.Rel s.sig_name) in
        List.map
          (fun (f : Ast.field) ->
            let col_pools =
              List.map (pool_of_expr env pools universe) f.fld_cols
            in
            ( f.fld_name,
              Array.of_list
                (List.map Array.of_list (cartesian (owner_pool :: col_pools)))
            ))
          s.sig_fields)
      spec.sigs
  in
  let cells = sig_cells @ field_cells in
  let n_bits =
    List.fold_left (fun n (_, tuples) -> n + Array.length tuples) 0 cells
  in
  let caps =
    List.filter (fun (name, _) -> not (List.mem name env.top_sigs)) scope.overrides
  in
  { env; pools; cells; n_bits; caps }

let instance_of_mask t bit =
  let index = ref 0 in
  let members tuples =
    Array.to_list tuples
    |> List.filter (fun _ ->
           let b = bit !index in
           incr index;
           b)
  in
  let sigs, fields =
    List.partition_map
      (fun (name, tuples) ->
        match Ast.find_sig t.env.spec name with
        | Some _ ->
            Either.Left
              ( name,
                List.map
                  (fun (tu : Alloy.Instance.Tuple.t) -> tu.(0))
                  (members tuples) )
        | None ->
            Either.Right (name, Alloy.Instance.Tuple_set.of_list (members tuples)))
      t.cells
  in
  { Alloy.Instance.sigs; fields }

let caps_hold t inst =
  List.for_all
    (fun (name, k) ->
      match List.assoc_opt name inst.Alloy.Instance.sigs with
      | Some atoms -> List.length atoms <= k
      | None -> true)
    t.caps
