(** Deterministic pseudo-random numbers for the fuzzing harness
    (splitmix64).

    The harness derives one independent stream per (target, iteration) from
    the campaign seed, so every failing input is replayable from the seed
    alone and campaigns are bit-reproducible across runs.  Mirrors the
    technique of the simulated LLM's generator but lives here so the fuzz
    library stays independent of the repair stack. *)

type t

val create : int64 -> t

val of_context : seed:int -> string list -> t
(** Derive a generator from the campaign seed and a context path, e.g.
    [["sat"; "iter"; "17"]].  Distinct paths give independent streams. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, n).  Raises [Invalid_argument] when [n <= 0]. *)

val range : t -> int -> int -> int
(** Uniform in [lo, hi] inclusive. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [true] with the given probability. *)

val choose : t -> 'a list -> 'a
(** Uniform pick; raises [Invalid_argument] on the empty list. *)

val sample : t -> int -> 'a list -> 'a list
(** Up to [n] distinct positions of the list, in original order. *)
