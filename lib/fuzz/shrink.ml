open Specrepair_sat
module Ast = Specrepair_alloy.Ast

let run ?(max_steps = 400) candidates still_fails x =
  let steps = ref 0 in
  let rec improve x =
    if !steps >= max_steps then x
    else
      let next =
        List.find_opt
          (fun c ->
            !steps < max_steps
            && begin
                 incr steps;
                 still_fails c
               end)
          (candidates x)
      in
      match next with Some c -> improve c | None -> x
  in
  improve x

(* Each way of removing the [i]th element. *)
let drop_each xs =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) xs) xs

(* Each way of replacing the [i]th element by one of its variants. *)
let replace_each variants xs =
  List.concat (List.mapi
    (fun i x ->
      List.map (fun v -> List.mapi (fun j y -> if i = j then v else y) xs) (variants x))
    xs)

let cnf_candidates (cnf : Dimacs.cnf) =
  let dropped_clause =
    List.map (fun clauses -> { cnf with Dimacs.clauses }) (drop_each cnf.Dimacs.clauses)
  in
  let dropped_literal =
    List.map
      (fun clauses -> { cnf with Dimacs.clauses })
      (replace_each (fun clause -> drop_each clause) cnf.Dimacs.clauses)
  in
  dropped_clause @ dropped_literal

(* Formula-valued direct children of a formula node. *)
let children = function
  | Ast.True | Ast.False | Ast.Cmp _ | Ast.Multf _ | Ast.Card _ | Ast.Call _ ->
      []
  | Ast.Not f -> [ f ]
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Implies (a, b) | Ast.Iff (a, b) ->
      [ a; b ]
  | Ast.Quant (_, _, f) -> [ f ]
  | Ast.Let (_, _, f) -> [ f ]

let rebuild f kids =
  match (f, kids) with
  | Ast.Not _, [ a ] -> Ast.Not a
  | Ast.And _, [ a; b ] -> Ast.And (a, b)
  | Ast.Or _, [ a; b ] -> Ast.Or (a, b)
  | Ast.Implies _, [ a; b ] -> Ast.Implies (a, b)
  | Ast.Iff _, [ a; b ] -> Ast.Iff (a, b)
  | Ast.Quant (q, d, _), [ a ] -> Ast.Quant (q, d, a)
  | Ast.Let (x, e, _), [ a ] -> Ast.Let (x, e, a)
  | _ -> f

let rec fmla_candidates f =
  let truncations =
    (if f <> Ast.True then [ Ast.True ] else [])
    @ (if f <> Ast.False then [ Ast.False ] else [])
    @ children f
  in
  let inner =
    List.map (rebuild f) (replace_each fmla_candidates (children f))
  in
  truncations @ inner

let spec_candidates (spec : Ast.spec) =
  let dropped_fact =
    List.map (fun facts -> { spec with Ast.facts }) (drop_each spec.facts)
  in
  let shrunk_fact =
    List.map
      (fun facts -> { spec with Ast.facts })
      (replace_each
         (fun (fact : Ast.fact_decl) ->
           List.map (fun b -> { fact with Ast.fact_body = b })
             (fmla_candidates fact.Ast.fact_body))
         spec.facts)
  in
  let shrunk_pred =
    List.map
      (fun preds -> { spec with Ast.preds })
      (replace_each
         (fun (p : Ast.pred_decl) ->
           List.map (fun b -> { p with Ast.pred_body = b })
             (fmla_candidates p.Ast.pred_body))
         spec.preds)
  in
  let shrunk_assert =
    List.map
      (fun asserts -> { spec with Ast.asserts })
      (replace_each
         (fun (a : Ast.assert_decl) ->
           List.map (fun b -> { a with Ast.assert_body = b })
             (fmla_candidates a.Ast.assert_body))
         spec.asserts)
  in
  dropped_fact @ shrunk_fact @ shrunk_pred @ shrunk_assert
