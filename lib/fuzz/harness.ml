open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Analyzer = Specrepair_solver.Analyzer
module Bounds = Specrepair_solver.Bounds
module Oracle = Specrepair_solver.Oracle
module Translate = Specrepair_solver.Translate
module Mutate = Specrepair_mutation.Mutate

type target =
  | Sat_target
  | Solver_target
  | Oracle_target
  | Eval_target
  | Proof_target
  | Simplify_target
  | Parse_target
  | Stream_target
  | Panel_target

let all_targets =
  [
    Sat_target;
    Solver_target;
    Oracle_target;
    Eval_target;
    Proof_target;
    Simplify_target;
    Parse_target;
    Stream_target;
    Panel_target;
  ]

let target_name = function
  | Sat_target -> "sat"
  | Solver_target -> "solver"
  | Oracle_target -> "oracle"
  | Eval_target -> "eval"
  | Proof_target -> "proof"
  | Simplify_target -> "simplify"
  | Parse_target -> "parse"
  | Stream_target -> "stream"
  | Panel_target -> "panel"

type report = {
  target : string;
  seed : int;
  iters : int;
  checks : int;
  skipped : int;
  discrepancies : int;
  corpus : string list;
}

(* {2 SAT target} *)

type sat_case = {
  cnf : Dimacs.cnf;
  assumptions : Lit.t list;
  budget : int option;
  split : int option;  (** solve after this many clauses, then add the rest *)
}

let gen_sat_case rng =
  let cnf = Gen.cnf rng in
  let assumptions =
    if Rng.bool rng then Gen.assumptions rng ~num_vars:cnf.Dimacs.num_vars
    else []
  in
  let budget = if Rng.int rng 4 = 0 then Some (Rng.range rng 1 20) else None in
  let split =
    if Rng.int rng 3 = 0 && List.length cnf.Dimacs.clauses >= 2 then
      Some (Rng.int rng (List.length cnf.Dimacs.clauses))
    else None
  in
  { cnf; assumptions; budget; split }

let take n xs = List.filteri (fun i _ -> i < n) xs
let drop n xs = List.filteri (fun i _ -> i >= n) xs

(* One solve verified against the reference: result tags must agree, models
   must satisfy clauses and assumptions, unsat cores must stay within the
   assumption set. *)
let verify_solve s cnf assumptions result ~budgeted =
  match ((result : Solver.result), Ref_sat.solve ~assumptions cnf) with
  | Solver.Unknown, _ ->
      if budgeted then Ok ()
      else Error "solver returned unknown without a conflict budget"
  | Solver.Sat, Ref_sat.Unsat -> Error "solver sat where reference says unsat"
  | Solver.Unsat, Ref_sat.Sat _ -> Error "solver unsat where reference says sat"
  | Solver.Sat, Ref_sat.Sat _ ->
      let holds l = Solver.lit_value s l in
      if
        not
          (List.for_all (fun cl -> List.exists holds cl) cnf.Dimacs.clauses)
      then Error "solver model falsifies a clause"
      else if not (List.for_all holds assumptions) then
        Error "solver model violates an assumption"
      else Ok ()
  | Solver.Unsat, Ref_sat.Unsat ->
      let core = Solver.unsat_assumptions s in
      if List.for_all (fun l -> List.exists (Lit.equal l) assumptions) core
      then Ok ()
      else Error "unsat core mentions a non-assumption literal"

let check_sat_case (c : sat_case) =
  let ( let* ) = Result.bind in
  let s = Solver.create () in
  ignore (Solver.new_vars s c.cnf.Dimacs.num_vars);
  let clauses = c.cnf.Dimacs.clauses in
  let prefix, rest =
    match c.split with
    | None -> (clauses, [])
    | Some k ->
        let k = min k (List.length clauses) in
        (take k clauses, drop k clauses)
  in
  List.iter (Solver.add_clause s) prefix;
  let* () =
    match c.split with
    | None -> Ok ()
    | Some _ ->
        let sub = { c.cnf with Dimacs.clauses = prefix } in
        verify_solve s sub c.assumptions
          (Solver.solve ~assumptions:c.assumptions s)
          ~budgeted:false
  in
  List.iter (Solver.add_clause s) rest;
  let result = Solver.solve ?max_conflicts:c.budget ~assumptions:c.assumptions s in
  let* () = verify_solve s c.cnf c.assumptions result ~budgeted:(c.budget <> None) in
  (* incremental contract: an Unsat caused by assumptions must not poison
     the solver when the clause set alone is satisfiable *)
  match (result, c.assumptions) with
  | Solver.Unsat, _ :: _ -> (
      match Ref_sat.solve c.cnf with
      | Ref_sat.Sat _ ->
          if not (Solver.ok s) then Error "assumption-unsat flipped ok to false"
          else if Solver.solve s <> Solver.Sat then
            Error "solver no longer sat after an assumption-unsat call"
          else Ok ()
      | Ref_sat.Unsat -> Ok ())
  | _ -> Ok ()

(* {2 Proof target} *)

type proof_case = {
  p_cnf : Dimacs.cnf;
  p_assumptions : Lit.t list;
  p_format : Proof.format;
}

let gen_proof_case rng =
  let p_cnf = Gen.cnf rng in
  let p_assumptions =
    if Rng.bool rng then Gen.assumptions rng ~num_vars:p_cnf.Dimacs.num_vars
    else []
  in
  let p_format = if Rng.bool rng then Proof.Text else Proof.Binary in
  { p_cnf; p_assumptions; p_format }

(* Under the drop-clause chaos hook the checker is fed every premise but
   the last — the same corruption {!Ref_sat} applies to its clause set.
   Derivations that depended on the missing clause are no longer RUP, so a
   correct checker rejects, which the harness counts as a discrepancy: the
   hook trips the proof target the same way it trips the sat target's
   corrupted reference. *)
let chaos_premises premises =
  match Sys.getenv_opt "SPECREPAIR_FUZZ_CHAOS" with
  | Some "drop-clause" -> (
      match List.rev premises with [] -> [] | _ :: rest -> List.rev rest)
  | _ -> premises

(* One proof-logged solve: the recorded steps must survive a round-trip
   through the on-disk format, and the checker must accept — a conflict
   derivation for Unsat results, plain RUP-ness of every logged step
   otherwise. *)
let check_proof_case { p_cnf = cnf; p_assumptions = assumptions; p_format } =
  let r = Proof.recorder () in
  let s = Solver.create () in
  Solver.set_proof s (Some (Proof.recorder_sink r));
  ignore (Solver.new_vars s cnf.Dimacs.num_vars);
  List.iter (Solver.add_clause s) cnf.Dimacs.clauses;
  let result = Solver.solve ~assumptions s in
  let steps = Proof.steps r in
  let ext = match p_format with Proof.Text -> ".drup" | Proof.Binary -> ".drat" in
  let path = Filename.temp_file "specrepair_fuzz_proof" ext in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      List.iter (Proof.write_step p_format oc) steps;
      close_out oc;
      let ic = open_in_bin path in
      let back =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> List.of_seq (Proof.read_steps p_format ic))
      in
      if
        not
          (List.length back = List.length steps
          && List.for_all2 Proof.step_equal back steps)
      then `Fail "proof steps changed across a file round-trip"
      else
        let premises = chaos_premises (Proof.inputs r) in
        match result with
        | Solver.Unsat -> (
            match Drat.check ~assumptions ~premises (List.to_seq steps) with
            | Ok () -> `Ok
            | Error m ->
                `Fail
                  (Printf.sprintf "checker rejected an UNSAT certificate: %s" m))
        | Solver.Sat | Solver.Unknown -> (
            (* nothing to refute, but every logged derivation must still
               be RUP over what precedes it *)
            match
              Drat.check ~require_conflict:false ~premises (List.to_seq steps)
            with
            | Ok () -> `Ok
            | Error m ->
                `Fail (Printf.sprintf "a logged derivation is not RUP: %s" m)))

(* {2 Simplify target} *)

type simplify_case = {
  y_cnf : Dimacs.cnf;
  y_budget : int option;  (** conflict budget for the inprocessing driver *)
}

let gen_simplify_case rng =
  let y_cnf = Gen.cnf rng in
  let y_budget =
    if Rng.int rng 4 = 0 then Some (Rng.range rng 1 20) else None
  in
  { y_cnf; y_budget }

(* One inprocessing solve ([Simplify.solve]) cross-checked three ways: the
   verdict against the DPLL reference, the reconstructed model against the
   {e original} clauses (variable elimination must restore what it
   removed), and the emitted Add/Delete stream against the independent
   DRUP checker — a conflict derivation for Unsat, plain RUP-ness of every
   transformation otherwise.  Under
   [SPECREPAIR_FUZZ_CHAOS=corrupt-simplify] the simplifier strengthens one
   clause without a justifying proof step, so a correct checker (or the
   model/verdict comparison) trips a discrepancy. *)
let check_simplify_case { y_cnf = cnf; y_budget = budget } =
  let r = Proof.recorder () in
  let sink = Proof.recorder_sink r in
  (* [Simplify.solve]'s sink carries Steps only; the premises are ours *)
  List.iter
    (fun c -> sink (Proof.Input (Array.of_list c)))
    cnf.Dimacs.clauses;
  let res = Simplify.solve ~proof:sink ?max_conflicts:budget cnf in
  let steps = List.to_seq (Proof.steps r) in
  let premises = Proof.inputs r in
  let check_steps ~unsat =
    let checked =
      if unsat then Drat.check ~premises steps
      else Drat.check ~require_conflict:false ~premises steps
    in
    match checked with
    | Ok () -> `Ok
    | Error m ->
        `Fail
          (if unsat then "checker rejected a simplified UNSAT certificate: " ^ m
           else "a simplification step is not RUP: " ^ m)
  in
  match res.Simplify.result with
  | Solver.Unknown ->
      if budget = None then `Fail "simplify solve unknown without a budget"
      else check_steps ~unsat:false
  | Solver.Unsat -> (
      match Ref_sat.solve cnf with
      | Ref_sat.Sat _ -> `Fail "simplified solve unsat where reference says sat"
      | Ref_sat.Unsat -> check_steps ~unsat:true)
  | Solver.Sat -> (
      match Ref_sat.solve cnf with
      | Ref_sat.Unsat -> `Fail "simplified solve sat where reference says unsat"
      | Ref_sat.Sat _ -> (
          match res.Simplify.model with
          | None -> `Fail "simplified solve sat without a model"
          | Some m ->
              let holds l =
                let v = Lit.var l in
                v < Array.length m && Bool.equal m.(v) (Lit.sign l)
              in
              if
                not
                  (List.for_all
                     (fun cl -> List.exists holds cl)
                     cnf.Dimacs.clauses)
              then `Fail "reconstructed model falsifies an original clause"
              else check_steps ~unsat:false))

(* {2 Parse target} *)

type parse_case = { r_spec : Ast.spec }

let gen_parse_case rng =
  { r_spec = (Gen.spec ~with_commands:true rng).Alloy.Typecheck.spec }

(* Byte offset of a 1-based (line, col) position in [src]. *)
let byte_offset src line col =
  let rec bol off l =
    if l >= line then off
    else
      match String.index_from_opt src off '\n' with
      | Some j -> bol (j + 1) (l + 1)
      | None -> String.length src
  in
  min (String.length src) (bol 0 1 + col - 1)

(* Replace one randomly chosen token of [src] with ['%'] (a character no
   Alloy token contains), recording the corrupted span: the frontend must
   reject the result with a diagnostic pointing exactly there. *)
let corrupt_one_token rng src =
  let tokens = Alloy.Lexer.tokenize src in
  let n = Array.length tokens - 1 (* keep Teof intact *) in
  if n <= 0 then None
  else
    let _, (span : Alloy.Loc.span) = tokens.(Rng.int rng n) in
    let start = byte_offset src span.Alloy.Loc.start_line span.Alloy.Loc.start_col in
    let stop = byte_offset src span.Alloy.Loc.end_line span.Alloy.Loc.end_col in
    Some
      ( String.sub src 0 start ^ "%"
        ^ String.sub src stop (String.length src - stop),
        span )

(* One printer/parser round trip: the printed source must parse, parse ∘
   print must be a fixpoint from the first parse on, and the parsed spec
   must still type-check.  Under [SPECREPAIR_FUZZ_CHAOS=corrupt-token]
   one token of the printed source is additionally replaced with garbage,
   and the frontend must reject it with a positioned diagnostic at the
   corrupted token — unlike the other chaos hooks, a correct frontend
   makes the chaos campaign {e pass}, because rejection is the desired
   behaviour. *)
let check_parse_case rng { r_spec = spec0 } =
  let printed = Alloy.Pretty.source spec0 in
  match Alloy.Parser.parse printed with
  | exception Alloy.Diagnostic.Error d ->
      `Fail
        (Printf.sprintf "printer emitted source the parser rejects: %s"
           (Alloy.Diagnostic.render ~source:printed d))
  | a1 -> (
      let printed1 = Alloy.Pretty.source a1 in
      match Alloy.Parser.parse printed1 with
      | exception Alloy.Diagnostic.Error d ->
          `Fail
            (Printf.sprintf "reprint of a parsed spec no longer parses: %s"
               (Alloy.Diagnostic.render ~source:printed1 d))
      | a2 -> (
          if not (Ast.equal_spec a1 a2) then
            `Fail "parse-print-parse is not a fixpoint"
          else
            match Alloy.Typecheck.check_result a1 with
            | Error m -> `Fail ("parsed spec no longer type-checks: " ^ m)
            | Ok _ -> (
                match Sys.getenv_opt "SPECREPAIR_FUZZ_CHAOS" with
                | Some "corrupt-token" -> (
                    match corrupt_one_token rng printed with
                    | None -> `Skip
                    | Some (bad, span) -> (
                        match Alloy.Parser.parse bad with
                        | _ -> `Fail "corrupted source parsed cleanly"
                        | exception Alloy.Diagnostic.Error d ->
                            let ds = d.Alloy.Diagnostic.span in
                            if Alloy.Loc.is_none ds then
                              `Fail "corrupted source rejected without a position"
                            else if
                              ds.Alloy.Loc.start_line = span.Alloy.Loc.start_line
                              && ds.Alloy.Loc.start_col = span.Alloy.Loc.start_col
                            then `Ok
                            else
                              `Fail
                                "rejection does not point at the corrupted token"))
                | _ -> `Ok)))

(* {2 Model-finder target} *)

type solver_case = {
  s_env : Alloy.Typecheck.env;
  s_scope : Bounds.scope;
  s_goal : Ast.fmla;
}

let gen_solver_case rng =
  let s_env = Gen.spec rng in
  let s_scope = Gen.scope rng s_env in
  let s_goal = Gen.fmla rng s_env ~vars:[] ~depth:(Rng.range rng 1 3) in
  { s_env; s_scope; s_goal }

let check_solver_case { s_env = env; s_scope = scope; s_goal = goal } =
  match Ref_models.find env scope goal with
  | Ref_models.Too_big -> `Skip
  | reference -> (
      match (Analyzer.solve_fmla env scope goal, reference) with
      | Analyzer.Unknown, _ -> `Fail "analyzer unknown without a budget"
      | Analyzer.Sat inst, _ -> (
          let space = Space.create env scope in
          if not (Space.caps_hold space inst) then
            `Fail "analyzer instance violates the scope caps"
          else if not (Alloy.Eval.facts_hold env inst) then
            `Fail "analyzer instance violates facts per direct evaluation"
          else if not (Alloy.Eval.fmla env inst [] goal) then
            `Fail "analyzer instance falsifies the goal per direct evaluation"
          else
            match reference with
            | Ref_models.Found _ -> `Ok
            | Ref_models.No_instance ->
                `Fail "analyzer sat but exhaustive enumeration finds no instance"
            | Ref_models.Too_big -> assert false)
      | Analyzer.Unsat, Ref_models.Found _ ->
          `Fail "analyzer unsat but exhaustive enumeration found an instance"
      | Analyzer.Unsat, Ref_models.No_instance -> `Ok
      | Analyzer.Unsat, Ref_models.Too_big -> assert false)

(* {2 Oracle target} *)

type oracle_case = {
  o_base : Alloy.Typecheck.env;
  o_candidates : Alloy.Typecheck.env list;
}

let gen_oracle_case rng =
  let o_base = Gen.spec ~with_commands:true rng in
  let mutants = Mutate.all_mutations o_base o_base.spec () in
  let o_candidates =
    Rng.sample rng 5 mutants
    |> List.filter_map (fun m ->
           match Mutate.apply o_base.spec m with
           | spec' -> (
               match Alloy.Typecheck.check_result spec' with
               | Ok env' -> Some env'
               | Error _ -> None)
           | exception _ -> None)
  in
  { o_base; o_candidates }

let check_oracle_case { o_base; o_candidates } =
  let oracle = Oracle.create o_base in
  let rec over_envs first = function
    | [] -> `Ok
    | (env' : Alloy.Typecheck.env) :: rest ->
        let rec over_cmds = function
          | [] -> over_envs false rest
          | (c : Ast.command) :: cmds -> (
              let fresh = Analyzer.run_command env' c in
              let incremental = Oracle.command_verdict oracle env' c in
              if incremental <> Analyzer.outcome_verdict fresh then
                `Fail "oracle verdict differs from a fresh analyzer solve"
              else if Oracle.command_verdict oracle env' c <> incremental then
                `Fail "oracle verdict changed on a repeat query"
              else if first then
                (* instance-producing path: memoized fresh solves must be
                   bit-identical to the plain analyzer *)
                match (Oracle.run_command oracle env' c, fresh) with
                | Analyzer.Sat a, Analyzer.Sat b ->
                    if Alloy.Instance.equal a b then over_cmds cmds
                    else `Fail "oracle instance differs from the analyzer's"
                | Analyzer.Unsat, Analyzer.Unsat
                | Analyzer.Unknown, Analyzer.Unknown ->
                    over_cmds cmds
                | _ -> `Fail "oracle run_command tag differs from the analyzer's"
              else over_cmds cmds)
        in
        over_cmds env'.spec.commands
  in
  over_envs true (o_base :: o_candidates)

(* A single base/candidate pair, used by the shrinker and by corpus replay
   (where the candidate is its own base). *)
let check_oracle_pair base cand =
  check_oracle_case { o_base = base; o_candidates = [ cand ] }

(* {2 Eval target} *)

type eval_case = {
  e_env : Alloy.Typecheck.env;
  e_scope : Bounds.scope;
  e_inst : Alloy.Instance.t;
  e_goal : Ast.fmla;
}

let gen_eval_case rng =
  let e_env = Gen.spec rng in
  (* no child caps: facts_hold knows nothing about scope caps, and the
     facts-conjunction comparison below must match it exactly *)
  let e_scope = Gen.scope ~child_caps:false rng e_env in
  let solver = Solver.create () in
  let bounds = Bounds.create solver e_env e_scope in
  let e_inst = Gen.instance rng bounds in
  let e_goal = Gen.fmla rng e_env ~vars:[] ~depth:(Rng.range rng 1 3) in
  { e_env; e_scope; e_inst; e_goal }

(* Satisfiability of [fmla_of bounds] with every primary variable pinned to
   the instance's membership: decides the translation's truth value on one
   concrete model. *)
let pinned_sat env scope (inst : Alloy.Instance.t) fmla_of =
  let s = Solver.create () in
  let bounds = Bounds.create s env scope in
  List.iter
    (fun (sg : Ast.sig_decl) ->
      let atoms = List.assoc sg.Ast.sig_name inst.Alloy.Instance.sigs in
      List.iter
        (fun ((t : Alloy.Instance.Tuple.t), v) ->
          Solver.add_clause s [ Lit.make v (List.mem t.(0) atoms) ])
        (Hashtbl.find bounds.Bounds.rel_vars sg.Ast.sig_name))
    env.Alloy.Typecheck.spec.sigs;
  List.iter
    (fun (sg : Ast.sig_decl) ->
      List.iter
        (fun (f : Ast.field) ->
          let tuples = List.assoc f.Ast.fld_name inst.Alloy.Instance.fields in
          List.iter
            (fun (t, v) ->
              Solver.add_clause s
                [ Lit.make v (Alloy.Instance.Tuple_set.mem t tuples) ])
            (Hashtbl.find bounds.Bounds.rel_vars f.Ast.fld_name))
        sg.Ast.sig_fields)
    env.Alloy.Typecheck.spec.sigs;
  let ts = Tseitin.create s in
  Tseitin.assert_formula ts (fmla_of bounds);
  match Solver.solve s with
  | Solver.Sat -> true
  | Solver.Unsat -> false
  | Solver.Unknown -> false

let check_eval_case { e_env = env; e_scope = scope; e_inst = inst; e_goal = goal } =
  let eval_goal = Alloy.Eval.fmla env inst [] goal in
  let sat_goal =
    pinned_sat env scope inst (fun bounds -> Translate.fmla bounds [] goal)
  in
  if eval_goal <> sat_goal then
    `Fail "pinned translation disagrees with direct evaluation on the goal"
  else
    let eval_facts = Alloy.Eval.facts_hold env inst in
    let sat_facts = pinned_sat env scope inst Translate.spec_fmla in
    if eval_facts <> sat_facts then
      `Fail "pinned translation disagrees with facts_hold on facts+implicit"
    else `Ok

(* {2 Campaign driver} *)

let spec_with_goal env (scope : Bounds.scope) goal =
  {
    env.Alloy.Typecheck.spec with
    Ast.commands =
      [
        {
          Ast.cmd_kind = Ast.Run_fmla goal;
          cmd_scope = scope.Bounds.default;
          cmd_scopes = scope.Bounds.overrides;
        };
      ];
  }

(* {2 Stream target} *)

module Corpus_stream = Specrepair_eval.Corpus_stream

(* The streaming corpus producer's contract: the rows of a seed range are
   a pure function of (source, seed, index), so any split of the range
   into sub-ranges must reproduce exactly the unsplit rows — this is what
   makes checkpoint/resume sound (a resumed run's chunk boundaries never
   match the crashed run's). *)
type stream_case = {
  w_source : Corpus_stream.source;
  w_seed : int;
  w_lo : int;
  w_hi : int;
  w_splits : int list;  (** interior cut points, strictly inside (lo, hi) *)
}

let gen_stream_case rng =
  (* mostly the generator-priced fuzzed source; one in eight exercises
     the real injected corpus (epoch wrap included) on a tiny range *)
  let w_source, w_lo, len =
    if Rng.int rng 8 = 0 then
      let natural = Corpus_stream.natural_total () in
      (* a range that may straddle the epoch boundary *)
      (Corpus_stream.Injected, Rng.int rng (natural + 2), Rng.range rng 1 3)
    else (Stream_source.fuzzed, Rng.int rng 10_000, Rng.range rng 4 24)
  in
  let w_hi = w_lo + len in
  let splits =
    if len < 2 then []
    else
      List.sort_uniq compare
        (List.init (Rng.int rng 4) (fun _ -> Rng.range rng (w_lo + 1) (w_hi - 1)))
  in
  { w_source; w_seed = Rng.int rng 1_000_000; w_lo; w_hi; w_splits = splits }

(* A row's identity: index, variant id, and a digest of the faulty spec
   (the payload a study would evaluate). *)
let stream_rows ~source ~seed lo hi =
  List.init (hi - lo) (fun k ->
      let i = lo + k in
      let v = Corpus_stream.variant ~source ~seed i in
      Printf.sprintf "%d|%s|%s" i v.Specrepair_benchmarks.Generate.id
        (Digest.to_hex
           (Digest.string
              (Alloy.Pretty.spec_to_string
                 v.Specrepair_benchmarks.Generate.injected
                   .Specrepair_benchmarks.Fault.faulty))))

let check_stream_case c =
  let whole = stream_rows ~source:c.w_source ~seed:c.w_seed c.w_lo c.w_hi in
  let bounds = (c.w_lo :: c.w_splits) @ [ c.w_hi ] in
  let rec segments = function
    | a :: (b :: _ as rest) ->
        stream_rows ~source:c.w_source ~seed:c.w_seed a b @ segments rest
    | _ -> []
  in
  let parts = segments bounds in
  if parts <> whole then
    Error
      (Printf.sprintf "split at [%s] yields different rows than the unsplit range"
         (String.concat ";" (List.map string_of_int c.w_splits)))
  else if stream_rows ~source:c.w_source ~seed:c.w_seed c.w_lo c.w_hi <> whole
  then Error "the same range streamed twice differs (nondeterministic producer)"
  else Ok ()

(* {2 Panel target} *)

module Llm = Specrepair_llm
module Learned = Specrepair_eval.Learned

(* Fuzzed tasks through every profile of the model panel: each sampled
   proposal must be well-typed, must differ from the faulty spec, and must
   respect the guidance blocklist (grown with each accepted proposal so
   the blocklist property is exercised, not vacuous). *)
type panel_case = { n_env : Alloy.Typecheck.env }

let gen_panel_case rng = { n_env = Gen.spec ~with_commands:true rng }

let read_all path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_all path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Under [SPECREPAIR_FUZZ_CHAOS=corrupt-stats] the target feeds the
   learned portfolio a tampered statistics file: a pristine save must
   round-trip, and any of three corruptions (an appended row, flipped
   digits, truncation) must be rejected loudly with [Corrupt_stats] — a
   damaged stats file silently reordering the portfolio would be the real
   bug, so failure to reject counts as a discrepancy. *)
let check_corrupt_stats rng =
  let stats = Learned.empty () in
  Learned.observe stats ~defect_class:"binop-swap" ~technique:"ATR"
    ~repaired:true ~time_ms:12.5;
  Learned.observe stats ~defect_class:"compound"
    ~technique:"Multi-Round_Auto" ~repaired:false ~time_ms:41.25;
  let path = Filename.temp_file "specrepair_fuzz_stats" ".stats" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Learned.save stats path;
      match Learned.load path with
      | exception Learned.Corrupt_stats m ->
          `Fail ("pristine statistics file rejected: " ^ m)
      | loaded ->
          if Learned.cells loaded <> Learned.cells stats then
            `Fail "statistics changed across a save/load round-trip"
          else begin
            let src = read_all path in
            let tampered =
              match Rng.int rng 3 with
              | 0 -> src ^ "graphs|BeAFix|3|1|9.0\n"
              | 1 -> String.map (function '1' -> '2' | c -> c) src
              | _ -> String.sub src 0 (String.length src - 3)
            in
            write_all path tampered;
            match Learned.load path with
            | exception Learned.Corrupt_stats _ -> `Ok
            | _ -> `Fail "tampered statistics file loaded cleanly"
          end)

let check_panel_case rng { n_env = env } =
  match Sys.getenv_opt "SPECREPAIR_FUZZ_CHAOS" with
  | Some "corrupt-stats" -> check_corrupt_stats rng
  | _ ->
      let task =
        Llm.Task.make ~spec_id:"fuzz-panel" ~domain:"fuzz"
          ~faulty:env.Alloy.Typecheck.spec ()
      in
      let check_profile (p : Llm.Model.profile) =
        (* the fuzz harness and the model each have their own splitmix
           stream type; bridge with a seed drawn from the campaign rng *)
        let prng =
          Llm.Rng.of_context ~seed:(Rng.int rng 1_000_000)
            [ "panel"; p.Llm.Model.name ]
        in
        let rec rounds blocked k =
          if k = 0 then Ok ()
          else
            let guidance = { Llm.Model.no_guidance with Llm.Model.blocked } in
            match Llm.Model.propose p ~rng:prng ~hints:[] guidance task with
            | None -> Ok () (* giving up is allowed; nothing to verify *)
            | Some prop ->
                if Ast.equal_spec prop task.Llm.Task.faulty then
                  Error (p.Llm.Model.name ^ ": proposal equals the faulty spec")
                else if List.exists (Ast.equal_spec prop) blocked then
                  Error (p.Llm.Model.name ^ ": proposal violates the blocklist")
                else (
                  match Alloy.Typecheck.check_result prop with
                  | Error m ->
                      Error (p.Llm.Model.name ^ ": ill-typed proposal: " ^ m)
                  | Ok _ -> rounds (prop :: blocked) (k - 1))
        in
        rounds [] 3
      in
      let rec over = function
        | [] -> `Ok
        | p :: rest -> (
            match check_profile p with
            | Ok () -> over rest
            | Error m -> `Fail m)
      in
      over Llm.Model.panel

(* Every check is wrapped: an exception is itself a discrepancy (the two
   sides are total on well-typed inputs). *)
let guard f =
  match f () with
  | r -> r
  | exception e -> `Fail (Printf.sprintf "exception: %s" (Printexc.to_string e))

let retypecheck spec =
  match Alloy.Typecheck.check_result spec with
  | Ok env -> Some env
  | Error _ -> None

let run ?(corpus_dir = "artifacts/fuzz") target ~seed ~iters () =
  let checks = ref 0 and skipped = ref 0 in
  let discrepancies = ref 0 and corpus = ref [] in
  let record name path = ignore name; corpus := path :: !corpus in
  for i = 0 to iters - 1 do
    let rng = Rng.of_context ~seed [ target_name target; "iter"; string_of_int i ] in
    let name = Printf.sprintf "%s-s%d-i%04d" (target_name target) seed i in
    let fail_and_persist persist = incr discrepancies; record name (persist ()) in
    match target with
    | Sat_target -> (
        let case = gen_sat_case rng in
        match guard (fun () -> match check_sat_case case with Ok () -> `Ok | Error m -> `Fail m) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let still_fails cnf' =
                  guard (fun () ->
                      match check_sat_case { case with cnf = cnf' } with
                      | Ok () -> `Ok
                      | Error m -> `Fail m)
                  <> `Ok
                in
                let shrunk = Shrink.run Shrink.cnf_candidates still_fails case.cnf in
                Corpus.save_cnf ~dir:corpus_dir ~name ~seed
                  ~assumptions:case.assumptions shrunk))
    | Solver_target -> (
        let case = gen_solver_case rng in
        match guard (fun () -> check_solver_case case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let fails_with env' goal' =
                  guard (fun () ->
                      check_solver_case { case with s_env = env'; s_goal = goal' })
                  <> `Ok
                in
                let goal =
                  Shrink.run Shrink.fmla_candidates
                    (fun g -> fails_with case.s_env g)
                    case.s_goal
                in
                let env =
                  Shrink.run Shrink.spec_candidates
                    (fun spec' ->
                      match retypecheck spec' with
                      | Some env' -> fails_with env' goal
                      | None -> false)
                    case.s_env.Alloy.Typecheck.spec
                  |> retypecheck
                  |> Option.value ~default:case.s_env
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed
                  (spec_with_goal env case.s_scope goal)))
    | Oracle_target -> (
        let case = gen_oracle_case rng in
        match guard (fun () -> check_oracle_case case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                (* find a single failing base/candidate pair, then shrink
                   the candidate while the pair keeps failing *)
                let pair_fails cand =
                  guard (fun () -> check_oracle_pair case.o_base cand) <> `Ok
                in
                let culprit =
                  List.find_opt pair_fails (case.o_base :: case.o_candidates)
                in
                let spec =
                  match culprit with
                  | None ->
                      (* only reproducible with the full interleaving;
                         persist the base unshrunk *)
                      case.o_base.Alloy.Typecheck.spec
                  | Some cand ->
                      Shrink.run Shrink.spec_candidates
                        (fun spec' ->
                          match retypecheck spec' with
                          | Some env' -> pair_fails env'
                          | None -> false)
                        cand.Alloy.Typecheck.spec
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed spec))
    | Proof_target -> (
        let case = gen_proof_case rng in
        match guard (fun () -> check_proof_case case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let still_fails cnf' =
                  guard (fun () -> check_proof_case { case with p_cnf = cnf' })
                  <> `Ok
                in
                let shrunk =
                  Shrink.run Shrink.cnf_candidates still_fails case.p_cnf
                in
                Corpus.save_cnf ~dir:corpus_dir ~name ~seed
                  ~assumptions:case.p_assumptions shrunk))
    | Eval_target -> (
        let case = gen_eval_case rng in
        match guard (fun () -> check_eval_case case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let goal =
                  Shrink.run Shrink.fmla_candidates
                    (fun g ->
                      guard (fun () -> check_eval_case { case with e_goal = g })
                      <> `Ok)
                    case.e_goal
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed
                  (spec_with_goal case.e_env case.e_scope goal)))
    | Parse_target -> (
        let case = gen_parse_case rng in
        match guard (fun () -> check_parse_case rng case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let still_fails spec' =
                  (* only consider shrinks that still type-check, so the
                     persisted entry reproduces the round-trip failure and
                     not a typing one *)
                  match retypecheck spec' with
                  | Some _ ->
                      guard (fun () -> check_parse_case rng { r_spec = spec' })
                      <> `Ok
                  | None -> false
                in
                let shrunk =
                  Shrink.run Shrink.spec_candidates still_fails case.r_spec
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed shrunk))
    | Stream_target -> (
        let case = gen_stream_case rng in
        match
          guard (fun () ->
              match check_stream_case case with Ok () -> `Ok | Error m -> `Fail m)
        with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                (* range splits have no shrink lattice; persist the first
                   row's faulty spec so the producer bug is replayable *)
                let v =
                  Corpus_stream.variant ~source:case.w_source ~seed:case.w_seed
                    case.w_lo
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed
                  v.Specrepair_benchmarks.Generate.injected
                    .Specrepair_benchmarks.Fault.faulty))
    | Panel_target -> (
        let case = gen_panel_case rng in
        match guard (fun () -> check_panel_case rng case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let still_fails spec' =
                  match retypecheck spec' with
                  | Some env' ->
                      guard (fun () ->
                          check_panel_case
                            (Rng.of_context ~seed [ "panel-shrink"; name ])
                            { n_env = env' })
                      <> `Ok
                  | None -> false
                in
                let shrunk =
                  Shrink.run Shrink.spec_candidates still_fails
                    case.n_env.Alloy.Typecheck.spec
                in
                Corpus.save_spec ~dir:corpus_dir ~name ~seed shrunk))
    | Simplify_target -> (
        let case = gen_simplify_case rng in
        match guard (fun () -> check_simplify_case case) with
        | `Skip -> incr skipped
        | `Ok -> incr checks
        | `Fail _ ->
            incr checks;
            fail_and_persist (fun () ->
                let still_fails cnf' =
                  guard (fun () ->
                      check_simplify_case { case with y_cnf = cnf' })
                  <> `Ok
                in
                let shrunk =
                  Shrink.run Shrink.cnf_candidates still_fails case.y_cnf
                in
                Corpus.save_cnf ~dir:corpus_dir ~name ~seed ~assumptions:[]
                  shrunk))
  done;
  {
    target = target_name target;
    seed;
    iters;
    checks = !checks;
    skipped = !skipped;
    discrepancies = !discrepancies;
    corpus = List.rev !corpus;
  }

(* {2 JSON summaries} *)

let json_string s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""

let report_json r =
  Printf.sprintf
    "{\"target\":%s,\"seed\":%d,\"iters\":%d,\"checks\":%d,\"skipped\":%d,\"discrepancies\":%d,\"corpus\":[%s]}"
    (json_string r.target) r.seed r.iters r.checks r.skipped r.discrepancies
    (String.concat "," (List.map json_string r.corpus))

let summary_json ~corpus_dir ~seed reports =
  let total = List.fold_left (fun n r -> n + r.discrepancies) 0 reports in
  Printf.sprintf
    "{\"fuzz\":{\"seed\":%d,\"corpus_dir\":%s,\"targets\":[%s],\"total_discrepancies\":%d}}"
    seed (json_string corpus_dir)
    (String.concat "," (List.map report_json reports))
    total

(* {2 Corpus replay} *)

let replay path =
  let ( let* ) = Result.bind in
  if Filename.check_suffix path ".cnf" then
    match Corpus.load_cnf path with
    | cnf, assumptions -> (
        let* () =
          check_sat_case { cnf; assumptions; budget = None; split = None }
        in
        let* () =
          match
            guard (fun () ->
                check_proof_case
                  { p_cnf = cnf;
                    p_assumptions = assumptions;
                    p_format = Proof.Text;
                  })
          with
          | `Ok | `Skip -> Ok ()
          | `Fail m -> Error m
        in
        if assumptions <> [] then Ok ()
        else
          match
            guard (fun () ->
                check_simplify_case { y_cnf = cnf; y_budget = None })
          with
          | `Ok | `Skip -> Ok ()
          | `Fail m -> Error m)
    | exception e -> Error (Printexc.to_string e)
  else if Filename.check_suffix path ".als" then
    match Corpus.load_spec path with
    | exception e -> Error (Printexc.to_string e)
    | env ->
        let* () =
          (* every spec entry also round-trips through the frontend *)
          match
            guard (fun () ->
                check_parse_case
                  (Rng.of_context ~seed:0 [ "replay"; path ])
                  { r_spec = env.Alloy.Typecheck.spec })
          with
          | `Ok | `Skip -> Ok ()
          | `Fail m -> Error m
        in
        List.fold_left
          (fun acc (c : Ast.command) ->
            let* () = acc in
            let* () =
              match guard (fun () -> check_oracle_pair env env) with
              | `Ok | `Skip -> Ok ()
              | `Fail m -> Error m
            in
            match c.Ast.cmd_kind with
            | Ast.Run_fmla f -> (
                let scope = Bounds.scope_of_command c in
                match
                  guard (fun () ->
                      check_solver_case { s_env = env; s_scope = scope; s_goal = f })
                with
                | `Ok | `Skip -> Ok ()
                | `Fail m -> Error m)
            | Ast.Run_pred _ | Ast.Check _ -> Ok ())
          (Ok ()) env.Alloy.Typecheck.spec.commands
  else Error (Printf.sprintf "unknown corpus entry kind: %s" path)

let replay_dir dir =
  List.map (fun path -> (path, replay path)) (Corpus.files dir)
