open Specrepair_sat
module Alloy = Specrepair_alloy
module Ast = Alloy.Ast
module Pool = Specrepair_mutation.Pool
module Bounds = Specrepair_solver.Bounds

(* {2 CNF} *)

let cnf rng =
  let num_vars = Rng.range rng 1 10 in
  let n_clauses = Rng.int rng 36 in
  let clauses =
    List.init n_clauses (fun _ ->
        let len = Rng.range rng 1 4 in
        List.init len (fun _ -> Lit.make (Rng.int rng num_vars) (Rng.bool rng)))
  in
  { Dimacs.num_vars; clauses }

let assumptions rng ~num_vars =
  let n = Rng.int rng 4 in
  List.init n (fun _ -> Lit.make (Rng.int rng num_vars) (Rng.bool rng))

(* {2 Formulas} *)

let intcmps = [ Ast.Ilt; Ast.Ile; Ast.Ieq; Ast.Ineq; Ast.Ige; Ast.Igt ]
let quants = [ Ast.Qall; Ast.Qsome; Ast.Qno; Ast.Qlone; Ast.Qone ]

let atomic rng (env : Alloy.Typecheck.env) vars =
  let pool = Pool.atomic_fmlas env ~vars ~limit:120 () in
  let choices =
    [ `Pool; `Pool; `Pool; `Pool; `Card; `Const ]
    @ (if env.spec.preds <> [] then [ `Call ] else [])
  in
  match Rng.choose rng choices with
  | `Const -> if Rng.bool rng then Ast.True else Ast.False
  | `Card -> (
      let arity = Rng.range rng 1 2 in
      match Pool.exprs env ~vars ~arity ~depth:2 ~limit:40 () with
      | [] -> Ast.True
      | exprs -> Ast.Card (Rng.choose rng intcmps, Rng.choose rng exprs, Rng.int rng 3))
  | `Call -> (
      let p = Rng.choose rng env.spec.preds in
      let args =
        List.map
          (fun _ ->
            match Pool.exprs env ~vars ~arity:1 ~depth:1 ~limit:20 () with
            | [] -> Ast.Univ
            | exprs -> Rng.choose rng exprs)
          p.Ast.pred_params
      in
      Ast.Call (p.Ast.pred_name, args))
  | `Pool -> ( match pool with [] -> Ast.True | _ -> Rng.choose rng pool)

let fmla rng (env : Alloy.Typecheck.env) ~vars ~depth =
  let fresh = ref 0 in
  let rec go vars depth =
    if depth <= 0 then atomic rng env vars
    else
      match Rng.int rng 9 with
      | 0 | 1 -> atomic rng env vars
      | 2 -> Ast.Not (go vars (depth - 1))
      | 3 -> Ast.And (go vars (depth - 1), go vars (depth - 1))
      | 4 -> Ast.Or (go vars (depth - 1), go vars (depth - 1))
      | 5 -> Ast.Implies (go vars (depth - 1), go vars (depth - 1))
      | 6 -> Ast.Iff (go vars (depth - 1), go vars (depth - 1))
      | 7 when env.spec.sigs <> [] ->
          let s = Rng.choose rng env.spec.sigs in
          let v = Printf.sprintf "v%d" !fresh in
          incr fresh;
          Ast.Quant
            ( Rng.choose rng quants,
              [ (v, Ast.Rel s.Ast.sig_name) ],
              go ((v, 1) :: vars) (depth - 1) )
      | _ -> atomic rng env vars
  in
  go vars depth

(* {2 Specifications} *)

let gen_field rng targets idx =
  let target = Rng.choose rng targets in
  let mult =
    Rng.choose rng [ Ast.Mset; Ast.Mset; Ast.Mset; Ast.Mlone; Ast.Mone ]
  in
  {
    Ast.fld_name = Printf.sprintf "f%d" idx;
    fld_cols = [ Ast.Rel target ];
    fld_mult = mult;
  }

let build_spec rng ~with_commands =
  let n_top = Rng.range rng 1 2 in
  let top_names = List.filteri (fun i _ -> i < n_top) [ "A"; "B" ] in
  let with_sub = Rng.chance rng 0.4 in
  let sub_parent = List.hd top_names in
  let all_names = top_names @ if with_sub then [ "C" ] else [] in
  (* fields: 0-2 binary fields over random owners/targets *)
  let n_fields = Rng.int rng 3 in
  let fields =
    List.init n_fields (fun i ->
        (Rng.choose rng all_names, gen_field rng all_names i))
  in
  let sig_mult rng =
    if Rng.chance rng 0.15 then Rng.choose rng [ Ast.Mone; Ast.Mlone; Ast.Msome ]
    else Ast.Mset
  in
  let mk_sig name parent =
    {
      Ast.sig_name = name;
      sig_parent = parent;
      sig_abstract = (parent = None && with_sub && name = sub_parent && Rng.chance rng 0.25);
      sig_mult = sig_mult rng;
      sig_fields =
        List.filter_map
          (fun (owner, f) -> if owner = name then Some f else None)
          fields;
    }
  in
  let sigs =
    List.map (fun n -> mk_sig n None) top_names
    @ (if with_sub then [ mk_sig "C" (Some sub_parent) ] else [])
  in
  (* the declaration-only env drives the typed pool for constraint bodies *)
  let env0 = Alloy.Typecheck.check { Ast.empty_spec with sigs } in
  let n_facts = Rng.int rng 3 in
  let facts =
    List.init n_facts (fun i ->
        {
          Ast.fact_name = (if Rng.bool rng then Some (Printf.sprintf "F%d" i) else None);
          fact_body = fmla rng env0 ~vars:[] ~depth:(Rng.range rng 1 3);
        })
  in
  let preds =
    if Rng.chance rng 0.4 then
      let params =
        if Rng.bool rng then
          [ ("x", Ast.Rel (Rng.choose rng all_names)) ]
        else []
      in
      let vars = List.map (fun (n, _) -> (n, 1)) params in
      [
        {
          Ast.pred_name = "p";
          pred_params = params;
          pred_body = fmla rng env0 ~vars ~depth:2;
        };
      ]
    else []
  in
  let asserts =
    if Rng.chance rng 0.4 then
      [ { Ast.assert_name = "q"; assert_body = fmla rng env0 ~vars:[] ~depth:2 } ]
    else []
  in
  let commands =
    if not with_commands then []
    else
      let kinds =
        [ `Fmla; `Fmla ]
        @ (if preds <> [] then [ `Pred ] else [])
        @ if asserts <> [] then [ `Check ] else []
      in
      List.init (Rng.range rng 1 2) (fun _ ->
          let cmd_kind =
            match Rng.choose rng kinds with
            | `Fmla -> Ast.Run_fmla (fmla rng env0 ~vars:[] ~depth:2)
            | `Pred -> Ast.Run_pred "p"
            | `Check -> Ast.Check "q"
          in
          {
            Ast.cmd_kind;
            cmd_scope = (if Rng.chance rng 0.2 then 1 else 2);
            cmd_scopes =
              (if with_sub && Rng.chance rng 0.2 then [ ("C", Rng.int rng 2) ]
               else if Rng.chance rng 0.2 then [ (List.hd top_names, Rng.range rng 1 2) ]
               else []);
          })
  in
  { Ast.empty_spec with sigs; facts; preds; asserts; commands }

let spec ?(with_commands = false) rng =
  let rec attempt n =
    let candidate = build_spec rng ~with_commands in
    match Alloy.Typecheck.check_result candidate with
    | Ok env -> env
    | Error _ when n > 0 -> attempt (n - 1)
    | Error msg ->
        invalid_arg
          (Printf.sprintf "Gen.spec: generator produced an ill-typed spec: %s" msg)
  in
  attempt 5

(* Concrete Alloy 4.2 text of a generated spec: the parse target's input,
   and the shape LLM-sim responses take. *)
let source ?with_commands rng =
  Alloy.Pretty.source (spec ?with_commands rng).Alloy.Typecheck.spec

(* {2 Scopes} *)

let scope ?(child_caps = true) rng (env : Alloy.Typecheck.env) =
  let default = if Rng.chance rng 0.15 then 1 else 2 in
  let overrides = ref [] in
  if env.top_sigs <> [] && Rng.chance rng 0.3 then begin
    let top = Rng.choose rng env.top_sigs in
    overrides := [ (top, Rng.range rng 1 2) ]
  end;
  let subs =
    List.filter (fun s -> not (List.mem s env.top_sigs)) env.sig_order
  in
  if child_caps && subs <> [] && Rng.chance rng 0.25 then
    overrides := (Rng.choose rng subs, Rng.int rng 2) :: !overrides;
  { Bounds.default; overrides = !overrides }

(* {2 Instances} *)

let instance rng (bounds : Bounds.t) =
  let env = bounds.Bounds.env in
  let spec = env.spec in
  let tuples_of name = List.map fst (Hashtbl.find bounds.Bounds.rel_vars name) in
  (* signature memberships, parents before children so containment holds *)
  let chosen : (string, string list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun name ->
      let s = Option.get (Ast.find_sig spec name) in
      let members =
        match s.Ast.sig_parent with
        | None ->
            (* the bounds break symmetry by forcing top-level pools to be
               used in index order, so a pinnable membership must be a pool
               prefix; up to isomorphism this loses nothing, since specs
               cannot name atoms *)
            let pool =
              List.map (fun (t : Alloy.Instance.Tuple.t) -> t.(0)) (tuples_of name)
            in
            let k = Rng.int rng (List.length pool + 1) in
            List.filteri (fun i _ -> i < k) pool
        | Some p ->
            List.filter (fun _ -> Rng.chance rng 0.55) (Hashtbl.find chosen p)
      in
      Hashtbl.replace chosen name members)
    env.sig_order;
  let sigs =
    List.map (fun (s : Ast.sig_decl) -> (s.Ast.sig_name, Hashtbl.find chosen s.sig_name)) spec.sigs
  in
  let fields =
    List.concat_map
      (fun (s : Ast.sig_decl) ->
        List.map
          (fun (f : Ast.field) ->
            ( f.Ast.fld_name,
              Alloy.Instance.Tuple_set.of_list
                (List.filter (fun _ -> Rng.chance rng 0.3) (tuples_of f.Ast.fld_name)) ))
          s.Ast.sig_fields)
      spec.sigs
  in
  { Alloy.Instance.sigs; fields }
