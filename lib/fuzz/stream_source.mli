(** The fuzz-generated corpus source for streaming studies.

    {!Specrepair_eval.Corpus_stream} maps global row indices to variants;
    its [Injected] source replays the paper's benchmark corpus, while
    this module plugs the fuzzer's spec generators ({!Gen}) in as a
    [Custom] source: every index yields a fresh well-typed specification
    with one seeded mutation applied — a corpus whose size is limited by
    nothing but the index space, at generator (not SAT-solver) cost.

    Fuzzed variants carry a synthetic one-variant domain and no
    observability guarantee (no command outcome is required to differ),
    so they feed corpus-level workloads — streaming-throughput benches,
    range-split determinism fuzzing, generation-rate measurements — not
    the paper's technique tables, which stay on the [Injected] source. *)

val fuzzed : Specrepair_eval.Corpus_stream.source
(** Deterministic in [(seed, index)]: generate a spec, pick the first
    applicable mutation from a seeded starting point that changes the
    spec and still type-checks, retrying with a fresh spec (bounded)
    when none qualifies. *)

val variant :
  seed:int -> int -> Specrepair_benchmarks.Generate.variant
(** The producer behind {!fuzzed}, exposed for direct use. *)
