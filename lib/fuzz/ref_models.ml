module Alloy = Specrepair_alloy

type verdict = Found of Alloy.Instance.t | No_instance | Too_big

let default_max_bits = 14

let find ?(max_bits = default_max_bits) env scope goal =
  let space = Space.create env scope in
  if space.Space.n_bits > max_bits then Too_big
  else begin
    let limit = 1 lsl space.Space.n_bits in
    let rec scan mask =
      if mask >= limit then No_instance
      else
        let inst = Space.instance_of_mask space (fun i -> mask land (1 lsl i) <> 0) in
        if
          Space.caps_hold space inst
          && Alloy.Eval.facts_hold env inst
          && Alloy.Eval.fmla env inst [] goal
        then Found inst
        else scan (mask + 1)
    in
    scan 0
  end
