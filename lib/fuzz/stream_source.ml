module Alloy = Specrepair_alloy
module Mutate = Specrepair_mutation.Mutate
module Benchmarks = Specrepair_benchmarks
module Domains = Benchmarks.Domains
module Corpus_stream = Specrepair_eval.Corpus_stream

let max_attempts = 20

(* Pick the first mutation, scanning from a seeded start, whose result
   differs from the ground truth and still type-checks on its own (the
   contract every consumer of [injected.faulty] relies on). *)
let pick_mutation rng env gt =
  let muts = Mutate.all_mutations env gt () in
  let n = List.length muts in
  if n = 0 then None
  else begin
    let arr = Array.of_list muts in
    let start = Rng.int rng n in
    let rec scan k =
      if k >= n then None
      else
        let m = arr.((start + k) mod n) in
        match Mutate.apply gt m with
        | exception (Not_found | Invalid_argument _) -> scan (k + 1)
        | faulty ->
            if faulty = gt then scan (k + 1)
            else (
              match Alloy.Typecheck.check_result faulty with
              | Ok _ -> Some (m, faulty)
              | Error _ -> scan (k + 1))
    in
    scan 0
  end

let variant ~seed i =
  if i < 0 then invalid_arg "Stream_source.variant: negative index";
  let rec attempt a =
    if a >= max_attempts then
      failwith
        (Printf.sprintf
           "Stream_source: no mutable spec for index %d after %d attempts \
            (seed %d)"
           i max_attempts seed)
    else
      let rng =
        Rng.of_context ~seed
          [ "stream-fuzzed"; string_of_int i; string_of_int a ]
      in
      let env = Gen.spec ~with_commands:true rng in
      let gt = env.Alloy.Typecheck.spec in
      match pick_mutation rng env gt with
      | None -> attempt (a + 1)
      | Some (m, faulty) ->
          let id = Printf.sprintf "fuzzed_%06d" i in
          let domain : Domains.t =
            {
              name = id;
              benchmark = Domains.A4F;
              source = Alloy.Pretty.source gt;
              count = 1;
              fault_mix = [];
              familiarity = 1.0;
            }
          in
          {
            Benchmarks.Generate.id;
            domain;
            ground_truth = gt;
            injected =
              {
                Benchmarks.Fault.faulty;
                mutations = [ m ];
                sites = [ m.Mutate.site ];
                revert_classes = [ m.Mutate.op ];
                description =
                  Printf.sprintf "revert the %s mutation in %s" m.Mutate.op
                    (Specrepair_mutation.Location.site_to_string m.Mutate.site);
                class_name = "fuzzed";
              };
          }
  in
  attempt 0

let fuzzed = Corpus_stream.Custom { name = "fuzzed"; produce = variant }
