(** The regression corpus: shrunk failing inputs persisted under
    [artifacts/fuzz/] together with the seed that produced them.

    Two file kinds, both human-readable and replayable:
    - [<name>.cnf] — DIMACS, with the originating seed and any assumption
      literals recorded as [c] comment lines;
    - [<name>.als] — a pretty-printed specification whose commands encode
      the failing query (re-parsed and re-checked on replay).

    Replay itself lives in {!Harness} (it reuses the differential checks);
    this module only knows the file format. *)

open Specrepair_sat
module Alloy = Specrepair_alloy

val save_cnf :
  dir:string -> name:string -> seed:int -> assumptions:Lit.t list ->
  Dimacs.cnf -> string
(** Writes [<dir>/<name>.cnf] (creating [dir] if needed); returns the
    path. *)

val save_spec : dir:string -> name:string -> seed:int -> Alloy.Ast.spec -> string
(** Writes [<dir>/<name>.als]; returns the path. *)

val load_cnf : string -> Dimacs.cnf * Lit.t list
(** Parses a corpus [.cnf] file back, recovering the assumptions. *)

val load_spec : string -> Alloy.Typecheck.env
(** Parses and type-checks a corpus [.als] file. *)

val files : string -> string list
(** The corpus entries ([.cnf] and [.als] files) in [dir], sorted by name;
    empty when the directory does not exist. *)
