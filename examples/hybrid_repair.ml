(* Hybrid repair (the paper's RQ3): combine a traditional engine's repairs
   with a multi-round LLM pipeline's repairs and measure the union — on a
   small stratified sample of the benchmark, this prints a miniature of
   Table II and of the 85.5% headline result.

   Run with: dune exec examples/hybrid_repair.exe *)

open Specrepair

let () =
  let variants = Benchmarks.Generate.sample ~per_domain:2 () in
  Printf.printf "sampled %d faulty specifications across %d domains\n\n"
    (List.length variants)
    (List.length Benchmarks.Domains.all);

  let repaired_by technique =
    List.filter_map
      (fun (v : Benchmarks.Generate.variant) ->
        let r = Eval.Study.run_one technique v in
        if r.rep = 1 then Some v.id else None)
      variants
  in
  let atr = repaired_by Eval.Technique.ATR in
  let multi = repaired_by (Eval.Technique.Multi (Llm.Multi_round.No_feedback, Llm.Model.gpt4)) in
  let union = List.sort_uniq compare (atr @ multi) in
  let overlap =
    List.length (List.filter (fun id -> List.mem id multi) atr)
  in
  let total = List.length variants in
  let pct n = 100. *. float_of_int n /. float_of_int total in
  Printf.printf "ATR alone:                 %2d/%d (%.1f%%)\n" (List.length atr)
    total (pct (List.length atr));
  Printf.printf "Multi-Round_None alone:    %2d/%d (%.1f%%)\n"
    (List.length multi) total
    (pct (List.length multi));
  Printf.printf "overlap:                   %2d\n" overlap;
  Printf.printf "hybrid (union):            %2d/%d (%.1f%%)\n"
    (List.length union) total
    (pct (List.length union));
  print_newline ();
  let only_llm = List.filter (fun id -> not (List.mem id atr)) multi in
  let only_atr = List.filter (fun id -> not (List.mem id multi)) atr in
  Printf.printf "repaired only by the LLM pipeline: %s\n"
    (String.concat ", " only_llm);
  Printf.printf "repaired only by ATR:              %s\n"
    (String.concat ", " only_atr)
