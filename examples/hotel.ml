(* The paper's Section II example: hotel key management with an overly
   restrictive check-in constraint ("no g.held" forbids a guest who already
   holds any key from checking in).  The paper's suggested fix replaces it
   with "k not in g.held".

   This walkthrough reproduces the scenario: the bug makes the
   returning-guest scenario unsatisfiable; the suggested fix restores it;
   automated repair finds an analyzer-approved fix.

   Run with: dune exec examples/hotel.exe *)

open Specrepair

let hotel_src ~checkin_constraint =
  Printf.sprintf
    {|
module hotel

abstract sig Key {}
sig RoomKey extends Key {}
sig Room {
  issued: set Key
}
sig Guest {
  held: set Key
}
one sig FrontDesk {
  lastKey: Room -> lone RoomKey,
  occupant: Room -> lone Guest
}

fact Issuance {
  all r: Room | r.issued in RoomKey
  all r: Room | r.(FrontDesk.lastKey) in r.issued
}

pred checkIn[g: Guest, r: Room, k: RoomKey] {
  no r.(FrontDesk.occupant)
  %s
  k in r.issued
}

pred returningGuestCheckIn {
  some g: Guest, r: Room, k: RoomKey | some g.held && checkIn[g, r, k]
}

assert OccupiedRoomsStay {
  all r: Room | lone r.(FrontDesk.occupant)
}

run returningGuestCheckIn for 3
check OccupiedRoomsStay for 3
|}
    checkin_constraint

let faulty = hotel_src ~checkin_constraint:"no g.held"
let paper_fix = hotel_src ~checkin_constraint:"k not in g.held"

let outcome_of env (c : Alloy.Ast.command) =
  match Analyzer.run_command env c with
  | Analyzer.Sat _ -> "SAT"
  | Analyzer.Unsat -> "UNSAT"
  | Analyzer.Unknown -> "UNKNOWN"

let show title src =
  let env = Alloy.Typecheck.check (Alloy.Parser.parse src) in
  Printf.printf "%s:\n" title;
  List.iter
    (fun (c : Alloy.Ast.command) ->
      let label =
        match c.cmd_kind with
        | Alloy.Ast.Run_pred n -> "run " ^ n
        | Alloy.Ast.Run_fmla _ -> "run {...}"
        | Alloy.Ast.Check n -> "check " ^ n
      in
      Printf.printf "  %-28s %s\n" label (outcome_of env c))
    env.spec.commands;
  print_newline ();
  env

let () =
  Printf.printf
    "The check-in bug from the paper's Fig. 1: 'no g.held' rejects any\n\
     guest who already holds a key, so a returning guest can never check\n\
     in.\n\n";
  let faulty_env = show "faulty specification" faulty in
  ignore (show "with the paper's suggested fix (k not in g.held)" paper_fix);

  (* automated repair: the multi-round LLM pipeline with generic feedback *)
  let task =
    Llm.Task.make ~spec_id:"hotel" ~domain:"hotel"
      ~faulty:faulty_env.Alloy.Typecheck.spec
      ~fault_sites:[ Mutation.Location.Pred_site "checkIn" ]
      ~fix_description:
        "the check-in constraint on the guest's keys is too restrictive"
      ~check_names:[ "OccupiedRoomsStay" ] ()
  in
  let session = Repair.Session.for_spec ~seed:7 task.Llm.Task.faulty in
  let result = Llm.Multi_round.repair ~session task Llm.Multi_round.Generic in
  Printf.printf "Multi-Round repair agent: repaired=%b in %d round(s)\n\n"
    result.repaired result.iterations;
  if result.repaired then begin
    let body =
      Mutation.Location.body result.final_spec
        (Mutation.Location.Pred_site "checkIn")
    in
    Printf.printf "repaired checkIn body:\n  %s\n\n"
      (Alloy.Pretty.fmla_to_string body);
    ignore
      (show "analyzer verdicts for the repaired specification"
         (Alloy.Pretty.spec_to_string result.final_spec))
  end
  else
    print_endline
      "no repair found within the round budget (try another seed)"
