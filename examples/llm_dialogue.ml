(* A look inside the LLM pipelines: the rendered prompt, the model's raw
   response (chatter and all), the extraction step, and the multi-round
   dialogue with analyzer feedback.

   Run with: dune exec examples/llm_dialogue.exe *)

open Specrepair

let () =
  (* pick a benchmark variant with a known fault *)
  let d = Option.get (Benchmarks.Domains.find "graphs") in
  let v = List.hd (Benchmarks.Generate.variants d) in
  let task = Benchmarks.Generate.to_task v in
  Printf.printf "=== task: %s (fault class: %s)\n\n" v.id
    v.injected.class_name;

  (* the single-round prompt, as a real deployment would send it *)
  let prompt = Llm.Prompt.single task Llm.Prompt.SLoc_fix in
  Printf.printf "--- prompt (Single-Round, Loc+Fix) ---\n%s\n"
    (Llm.Prompt.render prompt);

  (* the model's raw response *)
  let rng = Llm.Rng.of_context ~seed:42 [ v.id; "example" ] in
  let response = Llm.Model.respond Llm.Model.gpt4 ~rng Llm.Model.no_guidance prompt in
  Printf.printf "--- response ---\n%s\n\n" response;

  (* extraction: fenced block -> parsed spec *)
  (match Llm.Extract.spec_of_response response with
  | Some spec ->
      Printf.printf "--- extracted specification (%d AST nodes) ---\n\n"
        (Alloy.Ast.spec_size spec)
  | None -> Printf.printf "--- extraction failed (malformed response) ---\n\n");

  (* the multi-round dialogue, with the analyzer in the loop; trace the
     conversation as it happens *)
  let session = Repair.Session.for_spec ~seed:42 task.Llm.Task.faulty in
  let result =
    Llm.Multi_round.repair ~session
      ~trace:(fun ~round ~prompt ~response ->
        Printf.printf "--- round %d feedback ---\n%s\n--- round %d response (truncated) ---\n%s...\n\n"
          round
          (Option.value ~default:"(none)" prompt.Llm.Prompt.feedback)
          round
          (String.sub response 0 (min 120 (String.length response))))
      task Llm.Multi_round.Generic
  in
  Printf.printf
    "=== Multi-Round_Generic: repaired=%b after %d round(s)\n\n"
    result.repaired result.iterations;
  if result.repaired then begin
    let rep =
      Metrics.Rep.rep ~ground_truth:v.ground_truth
        ~candidate:result.final_spec ()
    in
    Printf.printf "REP vs ground truth: %b\n" rep;
    Printf.printf "TM: %.3f  SM: %.3f\n"
      (Metrics.Bleu.token_match
         ~reference:(Alloy.Pretty.spec_to_string v.ground_truth)
         ~candidate:(Alloy.Pretty.spec_to_string result.final_spec))
      (Metrics.Tree_kernel.syntax_match v.ground_truth result.final_spec)
  end
