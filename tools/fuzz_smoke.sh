#!/bin/sh
# Differential-fuzzing smoke gate: run every target of `specrepair fuzz`
# at a pinned seed and a bounded iteration count, and require zero
# cross-oracle discrepancies plus byte-identical summaries across two
# runs (the reproducibility contract the regression corpus depends on).
#
# Iteration counts are deliberately modest — the full campaigns run
# locally via `specrepair fuzz --iters 500` — but every discrepancy
# class the harness knows (SAT verdicts, models, unsat cores, budget
# behaviour, model-finder vs enumeration, oracle coherence, pinned
# translation vs evaluation, DRUP certificate checking, proof-preserving
# simplification, frontend print/parse round-trips, streaming-corpus
# split invariance, model-panel proposal contracts) is exercised on
# every run.
set -eu

cd "$(dirname "$0")/.."

seed="${FUZZ_SEED:-42}"
sat_iters="${FUZZ_SAT_ITERS:-500}"
iters="${FUZZ_ITERS:-100}"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run() {
    dune exec bin/specrepair.exe -- fuzz \
        --target "$1" --iters "$2" --seed "$seed" \
        --corpus-dir "$workdir/corpus-$1"
}

for pass in 1 2; do
    {
        run sat "$sat_iters"
        run solver "$iters"
        run oracle "$iters"
        run eval "$iters"
        run proof "$iters"
        run simplify "$iters"
        run parse "$iters"
        run stream "$iters"
        run panel "$iters"
    } > "$workdir/summary-$pass.json" || {
        echo "fuzz_smoke: discrepancies found (pass $pass):" >&2
        cat "$workdir/summary-$pass.json" >&2
        ls "$workdir"/corpus-* >&2 || true
        exit 1
    }
done

if ! cmp -s "$workdir/summary-1.json" "$workdir/summary-2.json"; then
    echo "fuzz_smoke: summaries differ between identically-seeded runs" >&2
    diff "$workdir/summary-1.json" "$workdir/summary-2.json" >&2 || true
    exit 1
fi

# The chaos hook corrupts the DPLL reference on purpose; the harness must
# notice, shrink, persist a corpus entry, and exit nonzero.
if SPECREPAIR_FUZZ_CHAOS=drop-clause dune exec bin/specrepair.exe -- fuzz \
    --target sat --iters 50 --seed "$seed" \
    --corpus-dir "$workdir/chaos" > "$workdir/chaos.json" 2>&1; then
    echo "fuzz_smoke: injected reference fault was not detected" >&2
    exit 1
fi
if ! ls "$workdir/chaos"/*.cnf >/dev/null 2>&1; then
    echo "fuzz_smoke: chaos run persisted no corpus entry" >&2
    exit 1
fi

# The same hook feeds the proof checker every premise but the last, so
# DRUP certificates stop checking: the rejections (never crashes) must be
# counted as discrepancies and fail the run.
if SPECREPAIR_FUZZ_CHAOS=drop-clause dune exec bin/specrepair.exe -- fuzz \
    --target proof --iters 50 --seed "$seed" \
    --corpus-dir "$workdir/chaos-proof" > "$workdir/chaos-proof.json" 2>&1; then
    echo "fuzz_smoke: tampered proof premises were not rejected" >&2
    exit 1
fi
if ! ls "$workdir/chaos-proof"/*.cnf >/dev/null 2>&1; then
    echo "fuzz_smoke: proof chaos run persisted no corpus entry" >&2
    exit 1
fi

# A third hook strengthens one clause inside the simplifier without
# emitting the justifying proof step: the independent checker (or the
# verdict/model comparison) must notice and fail the run.
if SPECREPAIR_FUZZ_CHAOS=corrupt-simplify dune exec bin/specrepair.exe -- fuzz \
    --target simplify --iters 50 --seed "$seed" \
    --corpus-dir "$workdir/chaos-simplify" \
    > "$workdir/chaos-simplify.json" 2>&1; then
    echo "fuzz_smoke: unjustified simplification was not detected" >&2
    exit 1
fi
if ! ls "$workdir/chaos-simplify"/*.cnf >/dev/null 2>&1; then
    echo "fuzz_smoke: simplify chaos run persisted no corpus entry" >&2
    exit 1
fi

# The parse chaos hook corrupts one token of each printed spec; the
# frontend must reject every corrupted source with a diagnostic placed
# exactly at the corruption.  Unlike the hooks above, correct behaviour
# here is rejection, so the campaign must report zero discrepancies and
# exit 0.
if ! SPECREPAIR_FUZZ_CHAOS=corrupt-token dune exec bin/specrepair.exe -- fuzz \
    --target parse --iters 50 --seed "$seed" \
    --corpus-dir "$workdir/chaos-parse" > "$workdir/chaos-parse.json" 2>&1; then
    echo "fuzz_smoke: a corrupted token was not rejected with a positioned diagnostic" >&2
    cat "$workdir/chaos-parse.json" >&2
    exit 1
fi

# The panel chaos hook tampers a learned-portfolio statistics file three
# ways (appended row, flipped digits, truncation); Learned.load must
# reject every corruption with Corrupt_stats.  As with corrupt-token,
# rejection is correct behaviour: the campaign must report zero
# discrepancies and exit 0.
if ! SPECREPAIR_FUZZ_CHAOS=corrupt-stats dune exec bin/specrepair.exe -- fuzz \
    --target panel --iters 50 --seed "$seed" \
    --corpus-dir "$workdir/chaos-panel" > "$workdir/chaos-panel.json" 2>&1; then
    echo "fuzz_smoke: a tampered statistics file was not rejected loudly" >&2
    cat "$workdir/chaos-panel.json" >&2
    exit 1
fi

# Keep the campaign summaries (e.g. for a CI artifact upload) if asked.
if [ -n "${FUZZ_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$FUZZ_ARTIFACTS_DIR"
    cp "$workdir/summary-1.json" "$FUZZ_ARTIFACTS_DIR/fuzz_summary.json"
    for c in chaos chaos-proof chaos-simplify chaos-parse chaos-panel; do
        if [ -s "$workdir/$c.json" ]; then
            cp "$workdir/$c.json" "$FUZZ_ARTIFACTS_DIR/fuzz_$c.json"
        fi
    done
fi

echo "fuzz_smoke: ok (seed $seed; sat x$sat_iters, solver/oracle/eval/proof/simplify/parse/stream/panel x$iters, twice, byte-identical; chaos hooks caught)"
