#!/usr/bin/env python3
"""Insert rendered result sections into EXPERIMENTS.md.

Usage: python3 tools/update_experiments.py results.csv
Replaces everything between '## Table I' and '## Known deviations' with the
renderer's output.
"""
import subprocess
import sys

csv_path = sys.argv[1]
rendered = subprocess.run(
    [sys.executable, "tools/render_experiments.py", csv_path],
    capture_output=True, text=True, check=True,
).stdout

doc = open("EXPERIMENTS.md").read()
start = doc.index("## Table I")
end = doc.index("## Known deviations")
open("EXPERIMENTS.md", "w").write(doc[:start] + rendered.rstrip() + "\n\n" + doc[end:])
print("EXPERIMENTS.md updated")
