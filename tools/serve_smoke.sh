#!/bin/sh
# Serve smoke gate: start the repair daemon, hit it with a concurrent
# client burst, and check the behaviours CI can assert deterministically:
#
#   - warm-cache counters: a burst of identical requests routes to one
#     sticky worker, so exactly one request misses and every other hits;
#   - crash containment: a chaos-SIGKILLed worker costs exactly the one
#     request it was serving (an error reply, a respawn counter tick) and
#     the daemon keeps answering;
#   - clean shutdown: SIGTERM ends the daemon with exit 0, the socket
#     file is unlinked, and the telemetry sink records the shutdown.
#
# Set SERVE_ARTIFACTS_DIR to keep the telemetry JSONL for upload.
set -eu

cd "$(dirname "$0")/.."

# Unix sockets cap path length around 104 bytes: stay under /tmp
# regardless of how deep the checkout lives.
workdir=$(mktemp -d /tmp/serve_smoke.XXXXXX)
sock="$workdir/d.sock"
telem="$workdir/serve_telemetry.jsonl"
daemon_log="$workdir/daemon.log"

cleanup() {
    if [ -n "${daemon_pid:-}" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -KILL "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

dune build bin/specrepair.exe
exe=_build/default/bin/specrepair.exe

SPECREPAIR_SERVE_CHAOS=1 "$exe" serve --socket "$sock" --workers 2 \
    --telemetry "$telem" > "$daemon_log" 2>&1 &
daemon_pid=$!

i=0
while [ ! -S "$sock" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: daemon socket never appeared" >&2
        cat "$daemon_log" >&2
        exit 1
    fi
    sleep 0.1
done

client() {
    "$exe" client "$@" --socket "$sock"
}

spec=specs/graph.als

# One warm-up miss, then a concurrent burst of eight identical requests:
# sticky routing makes the hit pattern exact (8 hits on the warmed key).
client evaluate --file "$spec" > "$workdir/warmup.json"
grep -q '"warm":false' "$workdir/warmup.json" || {
    echo "serve_smoke: warm-up request claims warm state" >&2
    exit 1
}
client evaluate --file "$spec" --burst 8 > "$workdir/burst.json"
hits=$(grep -c '"warm":true' "$workdir/burst.json")
if [ "$hits" -ne 8 ]; then
    echo "serve_smoke: expected 8 warm replies in the burst, got $hits" >&2
    cat "$workdir/burst.json" >&2
    exit 1
fi

status=$(client status)
echo "$status" | grep -q '"cache_hits":8' || {
    echo "serve_smoke: daemon counters disagree: $status" >&2
    exit 1
}
echo "$status" | grep -q '"worker_respawns":0' || {
    echo "serve_smoke: undisturbed burst respawned a worker: $status" >&2
    exit 1
}

# Chaos: SIGKILL the worker mid-request.  The client must get an error
# reply (exit 1), the respawn counter must tick, and the daemon must keep
# answering — including from state the dead worker never got to warm.
if client evaluate --file "$spec" --chaos kill > "$workdir/crash.json"; then
    echo "serve_smoke: chaos-killed request did not fail" >&2
    exit 1
fi
grep -q '"code":"worker_crashed"' "$workdir/crash.json" || {
    echo "serve_smoke: expected a worker_crashed reply:" >&2
    cat "$workdir/crash.json" >&2
    exit 1
}
client evaluate --file "$spec" > "$workdir/after.json"
grep -q '"ok":true' "$workdir/after.json" || {
    echo "serve_smoke: daemon stopped answering after a worker crash" >&2
    exit 1
}
client status | grep -q '"worker_respawns":1' || {
    echo "serve_smoke: crash did not tick the respawn counter" >&2
    exit 1
}

kill -TERM "$daemon_pid"
if wait "$daemon_pid"; then :; else
    echo "serve_smoke: daemon exited nonzero on SIGTERM" >&2
    cat "$daemon_log" >&2
    exit 1
fi
daemon_pid=
if [ -S "$sock" ]; then
    echo "serve_smoke: socket file survived shutdown" >&2
    exit 1
fi

[ -s "$telem" ] || {
    echo "serve_smoke: daemon wrote no telemetry" >&2
    exit 1
}
grep -q '"event":"shutdown"' "$telem" || {
    echo "serve_smoke: telemetry lacks the shutdown record" >&2
    exit 1
}

if [ -n "${SERVE_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$SERVE_ARTIFACTS_DIR"
    cp "$telem" "$SERVE_ARTIFACTS_DIR/serve_telemetry.jsonl"
fi

echo "serve_smoke: ok (8/8 warm hits, crash cost one request, clean SIGTERM shutdown)"
