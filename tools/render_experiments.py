#!/usr/bin/env python3
"""Render the EXPERIMENTS.md result sections from a study CSV.

Usage: python3 tools/render_experiments.py results.csv
Prints markdown to stdout; the maintainer pastes/updates EXPERIMENTS.md.
"""
import csv
import math
import sys
from collections import defaultdict

ORDER = [
    "ARepair", "ICEBAR", "BeAFix", "ATR",
    "Single-Round_Loc+Fix", "Single-Round_Loc", "Single-Round_Pass",
    "Single-Round_None", "Single-Round_Loc+Pass",
    "Multi-Round_None", "Multi-Round_Generic", "Multi-Round_Auto",
]
SHORT = {t: t.replace("Single-Round", "SR").replace("Multi-Round", "MR") for t in ORDER}

PAPER_T1 = {  # (A4F, ARepair-bench, total) from the paper's Table I
    "ARepair": (185, 9, 194), "ICEBAR": (1051, 21, 1072),
    "BeAFix": (981, 24, 1005), "ATR": (1286, 22, 1308),
    "Single-Round_Loc+Fix": (401, 29, 430), "Single-Round_Loc": (497, 20, 517),
    "Single-Round_Pass": (303, 26, 329), "Single-Round_None": (147, 4, 151),
    "Single-Round_Loc+Pass": (374, 11, 385), "Multi-Round_None": (1348, 24, 1372),
    "Multi-Round_Generic": (1290, 29, 1319), "Multi-Round_Auto": (1237, 27, 1264),
}
PAPER_FIG2 = {"ATR": (0.985, 0.997), "Multi-Round_Generic": (0.938, 0.943)}

def pearson(xs, ys):
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    num = sum((a - mx) * (b - my) for a, b in zip(xs, ys))
    dx = math.sqrt(sum((a - mx) ** 2 for a in xs))
    dy = math.sqrt(sum((b - my) ** 2 for b in ys))
    return num / (dx * dy) if dx > 0 and dy > 0 else 0.0

def main(path):
    rows = list(csv.DictReader(open(path)))
    per = defaultdict(lambda: defaultdict(int))
    domain_n = defaultdict(set)
    bench_of = {}
    tmsm = defaultdict(lambda: [0.0, 0.0, 0])
    score = defaultdict(dict)
    repaired = defaultdict(set)
    for r in rows:
        t, d, v = r["technique"], r["domain"], r["variant_id"]
        per[(r["benchmark"], d)][t] += int(r["rep"])
        domain_n[d].add(v)
        bench_of[d] = r["benchmark"]
        acc = tmsm[t]
        acc[0] += float(r["tm"]); acc[1] += float(r["sm"]); acc[2] += 1
        score[t][v] = (float(r["tm"]) + float(r["sm"])) / 2
        if r["rep"] == "1":
            repaired[t].add(v)
    total_n = len({r["variant_id"] for r in rows})

    print("## Table I — REP counts (per technique, per domain)\n")
    print("| benchmark | domain | n | " + " | ".join(SHORT[t] for t in ORDER) + " |")
    print("|---" * (3 + len(ORDER)) + "|")
    for bench in ["A4F", "ARepair"]:
        for d in [d for d in domain_n if bench_of[d] == bench]:
            cells = " | ".join(str(per[(bench, d)][t]) for t in ORDER)
            print(f"| {bench} | {d} | {len(domain_n[d])} | {cells} |")
        tot = {t: sum(per[(bench, d)][t] for d in domain_n if bench_of[d] == bench) for t in ORDER}
        n = sum(len(v) for d, v in domain_n.items() if bench_of[d] == bench)
        print(f"| {bench} | **summary** | {n} | " + " | ".join(f"**{tot[t]}**" for t in ORDER) + " |")
    print()
    print("Paper vs. measured (totals over 1,974 specs):\n")
    print("| technique | paper | paper % | measured | measured % |")
    print("|---|---|---|---|---|")
    for t in ORDER:
        m = len(repaired[t])
        p = PAPER_T1[t][2]
        print(f"| {t} | {p} | {100*p/1974:.1f}% | {m} | {100*m/max(1,total_n):.1f}% |")

    print("\n## Figure 2 — similarity to ground truth (mean TM / SM)\n")
    print("| technique | TM | SM |")
    print("|---|---|---|")
    for t in ORDER:
        tm, sm, n = tmsm[t]
        print(f"| {t} | {tm/n:.3f} | {sm/n:.3f} |")

    print("\n## Figure 3 — Pearson correlation matrix\n")
    variants = sorted({r["variant_id"] for r in rows})
    vec = {t: [score[t][v] for v in variants] for t in ORDER}
    print("| | " + " | ".join(SHORT[t] for t in ORDER) + " |")
    print("|---" * (1 + len(ORDER)) + "|")
    for a in ORDER:
        cells = " | ".join(f"{pearson(vec[a], vec[b]):.2f}" for b in ORDER)
        print(f"| {SHORT[a]} | {cells} |")
    trad = ORDER[:4]
    trad_min = min(pearson(vec[a], vec[b]) for a in trad for b in trad if a < b)
    mr_pair = pearson(vec["Multi-Round_Generic"], vec["Multi-Round_Auto"])
    cross_min = min(pearson(vec[a], vec[b])
                    for a in ORDER if a.startswith("Single")
                    for b in trad)
    print(f"\nTraditional cluster minimum r = {trad_min:.3f}; "
          f"MR_Generic~MR_Auto r = {mr_pair:.3f}; "
          f"weakest single-round-vs-traditional r = {cross_min:.3f} "
          f"(paper: 0.972+, 0.949, down to 0.644).")

    print("\n## Table II / Figure 4 — hybrid combinations (best per traditional)\n")
    print("| traditional | + LLM | trad | llm | overlap | union | union % |")
    print("|---|---|---|---|---|---|---|")
    best = None
    for trad in ORDER[:4]:
        combos = []
        for llm in ORDER[4:]:
            u = repaired[trad] | repaired[llm]
            combos.append((len(u), llm))
        combos.sort(reverse=True)
        u, llm = combos[0]
        ov = len(repaired[trad] & repaired[llm])
        print(f"| {trad} | {SHORT[llm]} | {len(repaired[trad])} | {len(repaired[llm])} | {ov} | {u} | {100*u/total_n:.1f}% |")
        if best is None or u > best[0]:
            best = (u, trad, llm)
    print(f"\nBest hybrid overall: **{best[1]} + {best[2]} = {best[0]}/{total_n} "
          f"({100*best[0]/total_n:.1f}%)** (paper: ATR + Multi-Round_None = 1,677/1,974 = 85.5%).")

def shape_checklist(rows):
    per_bench = defaultdict(lambda: defaultdict(set))
    repaired = defaultdict(set)
    tmsm = defaultdict(lambda: [0.0, 0.0, 0])
    score = defaultdict(dict)
    for r in rows:
        t, v = r["technique"], r["variant_id"]
        if r["rep"] == "1":
            repaired[t].add(v)
            per_bench[r["benchmark"]][t].add(v)
        acc = tmsm[t]
        acc[0] += float(r["tm"]); acc[1] += float(r["sm"]); acc[2] += 1
        score[t][v] = (float(r["tm"]) + float(r["sm"])) / 2
    total_n = len({r["variant_id"] for r in rows})
    n = {t: len(repaired[t]) for t in ORDER}
    a4f = {t: len(per_bench["A4F"][t]) for t in ORDER}
    checks = []
    def add(name, ok):
        checks.append((name, ok))
    # 1. A4F orderings
    mr = ["Multi-Round_None", "Multi-Round_Generic", "Multi-Round_Auto"]
    top4 = sorted(ORDER, key=lambda t: -a4f[t])[:4]
    add("A4F: Multi-Round family and ATR/BeAFix dominate the top 4",
        sum(1 for t in top4 if t in mr + ["ATR", "BeAFix"]) >= 3)
    add("A4F: ICEBAR > every Single-Round setting",
        all(a4f["ICEBAR"] > a4f[t] for t in ORDER if t.startswith("Single")))
    add("A4F: every Single-Round setting > ARepair is FALSE for weak hints "
        "(ARepair lowest among traditional)",
        a4f["ARepair"] == min(a4f[t] for t in ORDER[:4]))
    add("A4F: Single-Round_None is the weakest technique",
        n["Single-Round_None"] == min(n.values()))
    # 2. ARepair bench
    arep = {t: len(per_bench["ARepair"][t]) for t in ORDER}
    add("ARepair bench: a Multi-Round setting is at or near the top",
        max(arep[t] for t in mr) >= max(arep.values()) - 2)
    add("ARepair bench: BeAFix is the best traditional tool",
        arep["BeAFix"] == max(arep[t] for t in ORDER[:4]))
    # 3. Figure 2
    mean_sm = {t: tmsm[t][1] / tmsm[t][2] for t in ORDER}
    mean_tm = {t: tmsm[t][0] / tmsm[t][2] for t in ORDER}
    add("Fig 2: SM >= TM for most techniques",
        sum(1 for t in ORDER if mean_sm[t] >= mean_tm[t]) >= 8)
    trad_tm = sum(mean_tm[t] for t in ORDER[:4]) / 4
    llm_tm = sum(mean_tm[t] for t in ORDER[4:]) / 8
    add("Fig 2: traditional mean TM >= LLM mean TM", trad_tm >= llm_tm)
    # 4. Figure 3 clusters
    variants = sorted({r["variant_id"] for r in rows})
    def corr(a, b):
        return pearson([score[a][v] for v in variants], [score[b][v] for v in variants])
    trad_internal = min(corr(a, b) for a in ORDER[:4] for b in ORDER[:4] if a < b)
    cross = corr("Single-Round_None", "ATR")
    add("Fig 3: traditional internal correlation exceeds single-vs-traditional",
        trad_internal > cross)
    add("Fig 3: MR_Generic ~ MR_Auto is a strong pair",
        corr("Multi-Round_Generic", "Multi-Round_Auto") > cross)
    # 5. hybrids
    def union(a, b):
        return len(repaired[a] | repaired[b])
    best_union = max(union(tr, llm) for tr in ORDER[:4] for llm in ORDER[4:])
    best_single = max(n.values())
    add("Hybrids: best union beats best individual technique",
        best_union > best_single)
    add("Hybrids: best union is in the 80-90%% band (paper: 85.5%%)",
        0.78 * total_n <= best_union <= 0.93 * total_n)
    add("Hybrids: ARepair gains the most from hybridisation (relative)",
        max(union("ARepair", llm) for llm in ORDER[4:]) / max(1, n["ARepair"])
        >= max(max(union(tr, llm) for llm in ORDER[4:]) / max(1, n[tr])
               for tr in ORDER[1:4]))
    print("\n## Shape checklist (DESIGN.md contract)\n")
    for name, ok in checks:
        print(f"- [{'x' if ok else ' '}] {name}")
    passed = sum(1 for _, ok in checks if ok)
    print(f"\n{passed}/{len(checks)} checks hold.")

if __name__ == "__main__":
    rows = list(csv.DictReader(open(sys.argv[1])))
    main(sys.argv[1])
    shape_checklist(rows)
