#!/bin/sh
# Smoke test of the benchmark harness: run the whole bench at the smallest
# sample and check that the oracle stage produced a well-formed artifact
# with a genuine speedup.  Exits nonzero on any failure.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

out="$workdir/BENCH_oracle.json"

BENCH_SAMPLE=1 BENCH_ORACLE_OUT="$out" dune exec bench/main.exe

if [ ! -s "$out" ]; then
    echo "bench_smoke: $out missing or empty" >&2
    exit 1
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$out" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

required = [
    "sample", "domains", "candidates", "fresh_ms", "incremental_ms",
    "speedup", "verdict_hits", "verdict_misses", "instance_hits",
    "instance_misses", "fallback_queries", "formulas_translated",
    "formulas_reused", "contexts",
]
missing = [k for k in required if k not in data]
if missing:
    sys.exit(f"bench_smoke: BENCH_oracle.json lacks keys: {missing}")
if data["candidates"] <= 0:
    sys.exit("bench_smoke: no candidates were checked")
if data["speedup"] < 2.0:
    sys.exit(f"bench_smoke: oracle speedup {data['speedup']} below 2x")
print(f"bench_smoke: ok (speedup {data['speedup']}x on "
      f"{data['candidates']} candidates)")
EOF
else
    # no python3: settle for a structural sanity check
    for key in speedup fresh_ms incremental_ms verdict_hits; do
        if ! grep -q "\"$key\"" "$out"; then
            echo "bench_smoke: BENCH_oracle.json lacks key $key" >&2
            exit 1
        fi
    done
    echo "bench_smoke: ok (grep-level check; python3 unavailable)"
fi

# The repair CLI's --telemetry dump (one JSON object on stderr) must parse
# and report genuine work: solver queries and candidate evaluations.
telem="$workdir/telemetry.json"
dune exec bin/specrepair.exe -- repair specs/graph_faulty.als \
    --tool beafix --telemetry >/dev/null 2>"$telem"

if [ ! -s "$telem" ]; then
    echo "bench_smoke: --telemetry produced no output" >&2
    exit 1
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$telem" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

required = [
    "tool", "elapsed_ms", "timed_out", "solver_queries",
    "candidates_generated", "candidates_evaluated", "oracle", "phases",
]
missing = [k for k in required if k not in data]
if missing:
    sys.exit(f"bench_smoke: telemetry lacks keys: {missing}")
if data["solver_queries"] <= 0:
    sys.exit("bench_smoke: telemetry reports no solver queries")
if data["candidates_evaluated"] <= 0:
    sys.exit("bench_smoke: telemetry reports no candidates evaluated")
print(f"bench_smoke: telemetry ok ({data['solver_queries']} solver queries, "
      f"{data['candidates_evaluated']} candidates evaluated)")
EOF
else
    for key in solver_queries candidates_evaluated oracle phases; do
        if ! grep -q "\"$key\"" "$telem"; then
            echo "bench_smoke: telemetry lacks key $key" >&2
            exit 1
        fi
    done
    echo "bench_smoke: telemetry ok (grep-level check; python3 unavailable)"
fi
