#!/bin/sh
# Smoke test of the benchmark harness: run the whole bench at the smallest
# sample and check that the oracle, proof-certification and parallel stages
# produced well-formed artifacts.  Exits nonzero on any failure.
#
# Wall-clock thresholds (the oracle's >= 2x speedup, the daemon's >= 2x
# warm-request speedup, the learned portfolio's >= 1.2x time-to-first-
# repair) are only enforced on quiet local machines; under CI=1 the script
# gates on the stages' cache and scheduler counters instead, which are
# deterministic, because shared CI runners make wall-clock ratios flaky.
#
# Set BENCH_ARTIFACTS_DIR to keep the BENCH_*.json artifacts (e.g. for a
# CI artifact upload); by default they live and die in a temp directory.
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

out="$workdir/BENCH_oracle.json"
proof="$workdir/BENCH_proof.json"
par="$workdir/BENCH_parallel.json"
sat="$workdir/BENCH_sat.json"
serve="$workdir/BENCH_serve.json"
stream="$workdir/BENCH_stream.json"
hybrid="$workdir/BENCH_hybrid.json"
ci_mode="${CI:-0}"

# The stream stage's full-size corpus (1k vs 100k rows) is for committed
# artifacts from quiet machines; the smoke run scales it down and gates
# only on the deterministic facts (row counts, manifest completeness).
BENCH_SAMPLE="${BENCH_SAMPLE:-1}" BENCH_ORACLE_OUT="$out" \
    BENCH_PROOF_OUT="$proof" BENCH_PARALLEL_OUT="$par" \
    BENCH_SAT_OUT="$sat" BENCH_SERVE_OUT="$serve" \
    BENCH_STREAM_OUT="$stream" BENCH_HYBRID_OUT="$hybrid" \
    BENCH_STREAM_SMALL="${BENCH_STREAM_SMALL:-200}" \
    BENCH_STREAM_LARGE="${BENCH_STREAM_LARGE:-2000}" dune exec bench/main.exe

for f in "$out" "$proof" "$par" "$sat" "$serve" "$stream" "$hybrid"; do
    if [ ! -s "$f" ]; then
        echo "bench_smoke: $f missing or empty" >&2
        exit 1
    fi
done

if [ -n "${BENCH_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$BENCH_ARTIFACTS_DIR"
    cp "$out" "$proof" "$par" "$sat" "$serve" "$stream" "$hybrid" \
        "$BENCH_ARTIFACTS_DIR/"
fi

if command -v python3 >/dev/null 2>&1; then
    CI_MODE="$ci_mode" python3 - "$out" "$proof" "$par" "$sat" "$serve" \
        "$stream" "$hybrid" <<'EOF'
import json, os, sys

ci = os.environ.get("CI_MODE", "0") == "1"

with open(sys.argv[1]) as f:
    data = json.load(f)

required = [
    "sample", "domains", "candidates", "fresh_ms", "incremental_ms",
    "speedup", "verdict_hits", "verdict_misses", "instance_hits",
    "instance_misses", "fallback_queries", "formulas_translated",
    "formulas_reused", "contexts",
]
missing = [k for k in required if k not in data]
if missing:
    sys.exit(f"bench_smoke: BENCH_oracle.json lacks keys: {missing}")
if data["candidates"] <= 0:
    sys.exit("bench_smoke: no candidates were checked")
if ci:
    # deterministic cache-effectiveness gates for noisy shared runners
    if data["verdict_hits"] <= 0:
        sys.exit("bench_smoke: incremental oracle reports no verdict-cache hits")
    if data["formulas_reused"] <= 0:
        sys.exit("bench_smoke: incremental oracle reports no formula reuse")
    print(f"bench_smoke: oracle ok under CI ({data['verdict_hits']} verdict "
          f"hits, {data['formulas_reused']} formulas reused; wall-clock "
          f"speedup {data['speedup']}x unchecked)")
else:
    if data["speedup"] < 2.0:
        sys.exit(f"bench_smoke: oracle speedup {data['speedup']} below 2x")
    print(f"bench_smoke: oracle ok (speedup {data['speedup']}x on "
          f"{data['candidates']} candidates)")

with open(sys.argv[2]) as f:
    cdata = json.load(f)

crequired = [
    "sample", "domains", "candidates", "plain_ms", "certified_ms",
    "overhead", "verdicts_match", "certified", "certificate_failures",
    "sat_plain_ms", "sat_logged_ms", "sat_checked_ms", "proof_steps",
]
missing = [k for k in crequired if k not in cdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_proof.json lacks keys: {missing}")
if not cdata["verdicts_match"]:
    sys.exit("bench_smoke: certified verdicts diverged from plain verdicts")
if cdata["certified"] <= 0:
    sys.exit("bench_smoke: proof stage certified no UNSAT verdict")
if cdata["certificate_failures"] != 0:
    sys.exit("bench_smoke: the checker rejected "
             f"{cdata['certificate_failures']} certificate(s)")
if cdata["proof_steps"] <= 0:
    sys.exit("bench_smoke: pigeonhole run logged no proof steps")
print(f"bench_smoke: proof ok ({cdata['certified']} certificates accepted, "
      f"overhead {cdata['overhead']}x, {cdata['proof_steps']} pigeonhole "
      "steps)")

with open(sys.argv[3]) as f:
    pdata = json.load(f)

prequired = [
    "sample", "jobs", "rows", "static_ms", "dynamic_ms",
    "static_over_dynamic", "rows_match_sequential", "chunks_dispatched",
    "chunks_completed", "rows_completed", "retries", "workers_spawned",
    "workers_lost", "heartbeat_kills",
]
missing = [k for k in prequired if k not in pdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_parallel.json lacks keys: {missing}")
if pdata["rows"] <= 0:
    sys.exit("bench_smoke: parallel stage ran no rows")
if not pdata["rows_match_sequential"]:
    sys.exit("bench_smoke: parallel rows diverged from the sequential run")
if pdata["rows_completed"] != pdata["rows"]:
    sys.exit("bench_smoke: scheduler merged "
             f"{pdata['rows_completed']} of {pdata['rows']} rows")
if pdata["chunks_completed"] < 1 or \
        pdata["chunks_completed"] > pdata["chunks_dispatched"]:
    sys.exit("bench_smoke: implausible chunk counters "
             f"({pdata['chunks_completed']}/{pdata['chunks_dispatched']})")
if pdata["workers_spawned"] < 1:
    sys.exit("bench_smoke: scheduler spawned no workers")
if pdata["retries"] != 0 or pdata["workers_lost"] != 0:
    sys.exit("bench_smoke: undisturbed run reports retries="
             f"{pdata['retries']} workers_lost={pdata['workers_lost']}")
print(f"bench_smoke: parallel ok ({pdata['rows']} rows, "
      f"{pdata['chunks_completed']} chunks over {pdata['jobs']} workers, "
      f"static/dynamic {pdata['static_over_dynamic']}x)")

with open(sys.argv[4]) as f:
    sdata = json.load(f)

srequired = [
    "families", "best_simplify_speedup", "best_portfolio_speedup",
    "verdicts_agree", "certified_unsat", "certificate_failures",
]
missing = [k for k in srequired if k not in sdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_sat.json lacks keys: {missing}")
if not sdata["families"]:
    sys.exit("bench_smoke: SAT stage measured no instance families")
for fam in sdata["families"]:
    for k in ["name", "instances", "verdicts", "plain_ms", "simplify_ms",
              "portfolio_ms", "simplify_speedup", "portfolio_speedup",
              "certified_unsat"]:
        if k not in fam:
            sys.exit(f"bench_smoke: SAT family lacks key {k}")
if not sdata["verdicts_agree"]:
    sys.exit("bench_smoke: SAT stage verdicts diverged across solving modes")
if sdata["certified_unsat"] <= 0:
    sys.exit("bench_smoke: SAT stage certified no UNSAT instance")
if sdata["certificate_failures"] != 0:
    sys.exit("bench_smoke: the checker rejected "
             f"{sdata['certificate_failures']} SAT-stage certificate(s)")
if ci:
    # wall-clock ratios are flaky on shared runners; the deterministic
    # gates above (verdict agreement, accepted certificates) still ran
    print(f"bench_smoke: sat ok under CI ({len(sdata['families'])} families, "
          f"{sdata['certified_unsat']} certified; speedups unchecked)")
else:
    if sdata["best_simplify_speedup"] < 1.2:
        sys.exit("bench_smoke: best simplification speedup "
                 f"{sdata['best_simplify_speedup']} below 1.2x")
    if sdata["best_portfolio_speedup"] < 1.5:
        sys.exit("bench_smoke: best portfolio speedup "
                 f"{sdata['best_portfolio_speedup']} below 1.5x")
    print(f"bench_smoke: sat ok (simplify {sdata['best_simplify_speedup']}x, "
          f"portfolio {sdata['best_portfolio_speedup']}x, "
          f"{sdata['certified_unsat']} certified)")

with open(sys.argv[5]) as f:
    vdata = json.load(f)

vrequired = [
    "specs", "repeats", "requests_cold", "requests_warm", "cold_ms",
    "warm_ms", "cold_rps", "warm_rps", "warm_speedup", "replies_match",
    "cache_hits", "cache_misses", "worker_respawns", "queue_high_water",
    "clean_shutdown",
]
missing = [k for k in vrequired if k not in vdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_serve.json lacks keys: {missing}")
if vdata["requests_cold"] <= 0 or vdata["requests_warm"] <= 0:
    sys.exit("bench_smoke: serve stage sent no requests")
if not vdata["replies_match"]:
    sys.exit("bench_smoke: warm serve replies diverged from cold replies")
if not vdata["clean_shutdown"]:
    sys.exit("bench_smoke: the daemon did not shut down cleanly on SIGTERM")
# the cache identities are exact regardless of runner noise: every warm
# repeat must hit, every cold request must miss, and nothing may crash
if vdata["cache_hits"] != vdata["requests_warm"]:
    sys.exit("bench_smoke: serve cache hits "
             f"{vdata['cache_hits']} != warm requests {vdata['requests_warm']}")
if vdata["cache_misses"] != vdata["requests_cold"]:
    sys.exit("bench_smoke: serve cache misses "
             f"{vdata['cache_misses']} != cold requests {vdata['requests_cold']}")
if vdata["worker_respawns"] != 0:
    sys.exit("bench_smoke: undisturbed serve run reports "
             f"{vdata['worker_respawns']} worker respawn(s)")
if ci:
    print(f"bench_smoke: serve ok under CI ({vdata['cache_hits']} warm hits "
          f"over {vdata['requests_warm']} repeats; wall-clock speedup "
          f"{vdata['warm_speedup']}x unchecked)")
else:
    if vdata["warm_speedup"] < 2.0:
        sys.exit(f"bench_smoke: warm serve speedup {vdata['warm_speedup']} "
                 "below 2x")
    print(f"bench_smoke: serve ok (warm {vdata['warm_rps']} req/s vs cold "
          f"{vdata['cold_rps']} req/s, {vdata['warm_speedup']}x)")

with open(sys.argv[6]) as f:
    wdata = json.load(f)

wrequired = [
    "jobs", "small_rows", "large_rows", "small_ms", "large_ms",
    "small_rows_per_s", "large_rows_per_s", "large_over_small",
    "rows_match", "manifest_complete", "parent_peak_heap_mb",
]
missing = [k for k in wrequired if k not in wdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_stream.json lacks keys: {missing}")
if wdata["small_rows"] <= 0 or wdata["large_rows"] <= wdata["small_rows"]:
    sys.exit("bench_smoke: stream stage corpus sizes are implausible "
             f"({wdata['small_rows']} vs {wdata['large_rows']})")
if not wdata["rows_match"]:
    sys.exit("bench_smoke: stream stage merged row counts diverged")
if not wdata["manifest_complete"]:
    sys.exit("bench_smoke: stream stage finished with an incomplete manifest")
if ci:
    # throughput ratios are flaky on shared runners; the deterministic
    # gates (every row derived, checkpointed, merged) still ran
    print(f"bench_smoke: stream ok under CI ({wdata['large_rows']} rows "
          f"streamed and merged; throughput ratio "
          f"{wdata['large_over_small']}x unchecked)")
else:
    if wdata["large_over_small"] < 0.9:
        sys.exit("bench_smoke: streaming throughput degraded with corpus "
                 f"size ({wdata['large_over_small']}x large/small, need "
                 ">= 0.9)")
    print(f"bench_smoke: stream ok ({wdata['large_rows_per_s']} rows/s at "
          f"{wdata['large_rows']} rows, {wdata['large_over_small']}x of the "
          f"small run, parent peak heap {wdata['parent_peak_heap_mb']} MB)")

with open(sys.argv[7]) as f:
    hdata = json.load(f)

hrequired = [
    "sample", "tasks", "defect_classes", "mined_cells", "profiles",
    "union_repairs", "union_strictly_exceeds", "planned_tasks",
    "coldstart_identical", "static_ms", "learned_ms", "static_repairs",
    "learned_repairs", "speedup",
]
missing = [k for k in hrequired if k not in hdata]
if missing:
    sys.exit(f"bench_smoke: BENCH_hybrid.json lacks keys: {missing}")
for prof in hdata["profiles"]:
    for k in ["name", "techniques", "repairs", "rate"]:
        if k not in prof:
            sys.exit(f"bench_smoke: hybrid profile entry lacks key {k}")
if len(hdata["profiles"]) < 4:
    sys.exit("bench_smoke: hybrid stage covered fewer than 4 panel profiles")
if not hdata["union_strictly_exceeds"]:
    sys.exit("bench_smoke: panel union does not strictly exceed every "
             "single profile's coverage")
if not hdata["coldstart_identical"]:
    sys.exit("bench_smoke: cold-start repair_learned diverged from the "
             "static pipeline")
if hdata["planned_tasks"] <= 0:
    sys.exit("bench_smoke: mined statistics produced no learned plan")
if hdata["learned_repairs"] <= 0:
    sys.exit("bench_smoke: learned ordering repaired nothing")
if ci:
    # wall-clock time-to-first-repair is flaky on shared runners; the
    # deterministic gates (union coverage, cold-start identity, learned
    # plans, repair counts) still ran
    print(f"bench_smoke: hybrid ok under CI ({hdata['planned_tasks']} learned "
          f"plans over {hdata['defect_classes']} classes, union "
          f"{hdata['union_repairs']} repairs; speedup {hdata['speedup']}x "
          "unchecked)")
else:
    if hdata["speedup"] < 1.2:
        sys.exit(f"bench_smoke: learned portfolio speedup {hdata['speedup']} "
                 "below 1.2x time-to-first-repair")
    print(f"bench_smoke: hybrid ok (learned {hdata['speedup']}x faster, "
          f"{hdata['learned_repairs']}/{hdata['tasks']} repaired vs "
          f"{hdata['static_repairs']} static)")
EOF
else
    # no python3: settle for structural sanity checks
    for key in speedup fresh_ms incremental_ms verdict_hits; do
        if ! grep -q "\"$key\"" "$out"; then
            echo "bench_smoke: BENCH_oracle.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in certified certificate_failures overhead proof_steps; do
        if ! grep -q "\"$key\"" "$proof"; then
            echo "bench_smoke: BENCH_proof.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in static_ms dynamic_ms chunks_completed retries workers_lost; do
        if ! grep -q "\"$key\"" "$par"; then
            echo "bench_smoke: BENCH_parallel.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in best_simplify_speedup best_portfolio_speedup verdicts_agree \
            certified_unsat certificate_failures; do
        if ! grep -q "\"$key\"" "$sat"; then
            echo "bench_smoke: BENCH_sat.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in warm_speedup replies_match cache_hits worker_respawns \
            clean_shutdown; do
        if ! grep -q "\"$key\"" "$serve"; then
            echo "bench_smoke: BENCH_serve.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in large_over_small rows_match manifest_complete \
            parent_peak_heap_mb; do
        if ! grep -q "\"$key\"" "$stream"; then
            echo "bench_smoke: BENCH_stream.json lacks key $key" >&2
            exit 1
        fi
    done
    for key in union_strictly_exceeds coldstart_identical planned_tasks \
            learned_repairs speedup; do
        if ! grep -q "\"$key\"" "$hybrid"; then
            echo "bench_smoke: BENCH_hybrid.json lacks key $key" >&2
            exit 1
        fi
    done
    echo "bench_smoke: ok (grep-level check; python3 unavailable)"
fi

# The repair CLI's --telemetry dump (one JSON object on stderr) must parse
# and report genuine work: solver queries and candidate evaluations.
telem="$workdir/telemetry.json"
dune exec bin/specrepair.exe -- repair specs/graph_faulty.als \
    --tool beafix --telemetry >/dev/null 2>"$telem"

if [ ! -s "$telem" ]; then
    echo "bench_smoke: --telemetry produced no output" >&2
    exit 1
fi

if [ -n "${BENCH_ARTIFACTS_DIR:-}" ]; then
    cp "$telem" "$BENCH_ARTIFACTS_DIR/repair_telemetry.json"
fi

if command -v python3 >/dev/null 2>&1; then
    python3 - "$telem" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

required = [
    "tool", "elapsed_ms", "timed_out", "solver_queries",
    "candidates_generated", "candidates_evaluated", "oracle", "sat",
    "phases",
]
missing = [k for k in required if k not in data]
if missing:
    sys.exit(f"bench_smoke: telemetry lacks keys: {missing}")
if data["sat"]["conflicts"] < 0:
    sys.exit("bench_smoke: telemetry sat counters are negative")
if data["solver_queries"] <= 0:
    sys.exit("bench_smoke: telemetry reports no solver queries")
if data["candidates_evaluated"] <= 0:
    sys.exit("bench_smoke: telemetry reports no candidates evaluated")
print(f"bench_smoke: telemetry ok ({data['solver_queries']} solver queries, "
      f"{data['candidates_evaluated']} candidates evaluated)")
EOF
else
    for key in solver_queries candidates_evaluated oracle phases; do
        if ! grep -q "\"$key\"" "$telem"; then
            echo "bench_smoke: telemetry lacks key $key" >&2
            exit 1
        fi
    done
    echo "bench_smoke: telemetry ok (grep-level check; python3 unavailable)"
fi
