let () =
  List.iter
    (fun (d : Specrepair_benchmarks.Domains.t) ->
      let name = d.name in
      (try
         let env = Specrepair_benchmarks.Domains.env d in
         let session = Specrepair_repair.Session.create env in
         let ok =
           Specrepair_repair.Common.oracle_passes ~max_conflicts:50000 session
             env
         in
         Printf.printf "%-12s typecheck=ok oracle=%b\n%!" name ok;
         if ok then begin
           let inj = Specrepair_benchmarks.Fault.inject ~seed:42 d ~index:0 in
           Printf.printf "             fault[0]: class=%s sites=%s revert=%s\n%!"
             inj.class_name
             (String.concat "," (List.map Specrepair_benchmarks.Fault.Mutation.Location.site_to_string inj.sites))
             (String.concat "," inj.revert_classes)
         end
       with e -> Printf.printf "%-12s ERROR: %s\n%!" name (Printexc.to_string e)))
    Specrepair_benchmarks.Domains.all
