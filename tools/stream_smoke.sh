#!/bin/sh
# Crash-recovery smoke gate for streaming studies: run a small
# checkpointed study, kill it (SIGKILL, via the scheduler's chaos hook)
# after its first checkpointed chunk, resume it with --resume, and
# require the merged CSV to be identical — modulo the wall-clock time_ms
# column — to an uninterrupted run.  Also checks that resuming a
# directory with no checkpoint fails loudly instead of silently starting
# fresh.
#
# Everything gated here is deterministic (row identity, manifest shape,
# exit codes), so the script behaves the same under CI=1 and locally.
# Set STREAM_ARTIFACTS_DIR to keep the manifest, shards and merged CSVs
# (e.g. for a CI artifact upload).
set -eu

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

total="${STREAM_TOTAL:-4}"
jobs="${STREAM_JOBS:-2}"
seed="${STREAM_SEED:-7}"

dune build bin/specrepair.exe
exe=_build/default/bin/specrepair.exe

# 1. Arm the crash hook: the scheduler parent SIGKILLs its own process
#    right after the first chunk is checkpointed — the overnight study
#    dying mid-run.  The command must die abnormally, leaving a manifest
#    and at least one shard but no merged CSV.
if SPECREPAIR_SCHED_CRASH_AFTER_CHUNKS=1 "$exe" study \
    --dir "$workdir/crashed" --total "$total" --jobs "$jobs" \
    --technique ATR --seed "$seed" --quiet >/dev/null 2>&1; then
    echo "stream_smoke: the crash hook never fired (run completed)" >&2
    exit 1
fi
if [ ! -f "$workdir/crashed/manifest.json" ]; then
    echo "stream_smoke: crashed run left no manifest" >&2
    exit 1
fi
if ! ls "$workdir/crashed"/shard_*.res >/dev/null 2>&1; then
    echo "stream_smoke: crashed run checkpointed no shard" >&2
    exit 1
fi
if [ -f "$workdir/crashed/results.csv" ]; then
    echo "stream_smoke: crashed run merged a CSV it must not have" >&2
    exit 1
fi

# 2. Resume: only the pending rows are computed, the run completes, and
#    the shards merge into a CSV.
"$exe" study --dir "$workdir/crashed" --total "$total" --jobs "$jobs" \
    --technique ATR --seed "$seed" --quiet --resume >/dev/null

# 3. The uninterrupted reference run.
"$exe" study --dir "$workdir/clean" --total "$total" --jobs "$jobs" \
    --technique ATR --seed "$seed" --quiet >/dev/null

# 4. Byte-identical modulo the wall-clock column.
cut -d, -f1-8 "$workdir/crashed/results.csv" > "$workdir/crashed.cols"
cut -d, -f1-8 "$workdir/clean/results.csv" > "$workdir/clean.cols"
if ! cmp -s "$workdir/crashed.cols" "$workdir/clean.cols"; then
    echo "stream_smoke: crash+resume CSV diverged from the clean run:" >&2
    diff "$workdir/crashed.cols" "$workdir/clean.cols" >&2 || true
    exit 1
fi

# 5. Resuming a checkpoint that does not exist is an error, never a
#    silent fresh start.
if "$exe" study --dir "$workdir/nothing" --total "$total" \
    --technique ATR --seed "$seed" --quiet --resume >/dev/null 2>&1; then
    echo "stream_smoke: --resume without a manifest did not fail" >&2
    exit 1
fi

if [ -n "${STREAM_ARTIFACTS_DIR:-}" ]; then
    mkdir -p "$STREAM_ARTIFACTS_DIR"
    cp "$workdir/crashed/manifest.json" "$STREAM_ARTIFACTS_DIR/"
    cp "$workdir/crashed"/shard_*.res "$STREAM_ARTIFACTS_DIR/" 2>/dev/null || true
    cp "$workdir/crashed/results.csv" "$STREAM_ARTIFACTS_DIR/results_resumed.csv"
    cp "$workdir/clean/results.csv" "$STREAM_ARTIFACTS_DIR/results_clean.csv"
fi

echo "stream_smoke: ok ($total rows x $jobs jobs; killed after first chunk, resumed, merged CSV identical modulo time_ms)"
