(* Benchmark harness.

   Running this executable regenerates every experimental artifact of the
   paper on a stratified benchmark sample — Table I (REP counts), Figure 2
   (TM/SM means), Figure 3 (Pearson matrix), Table II / Figure 4 (hybrid
   unions) — and then times each regeneration stage and the substrate
   operations with Bechamel (one Test.make per table/figure).

   Environment:
     BENCH_SAMPLE       variants per domain for the embedded study (default 2;
                        the full-scale run is `specrepair evaluate`; the
                        HYBRID stage floors its own battery at 2 so the
                        panel-union gate is never vacuous).
     BENCH_ORACLE_OUT   where to write the oracle stage's JSON artifact
                        (default BENCH_oracle.json in the working directory).
     BENCH_PROOF_OUT    where to write the proof-certification stage's JSON
                        artifact (default BENCH_proof.json).
     BENCH_PARALLEL_OUT where to write the parallel-scheduling stage's JSON
                        artifact (default BENCH_parallel.json).
     BENCH_SAT_OUT      where to write the hard-instance SAT stage's JSON
                        artifact (default BENCH_sat.json).
     BENCH_SERVE_OUT    where to write the daemon serving stage's JSON
                        artifact (default BENCH_serve.json).
     BENCH_SERVE_REPEATS warm repeats per spec in the serve stage (default 5).
     BENCH_JOBS         worker count for the parallel stage (default 4).
     BENCH_STREAM_OUT   where to write the streaming-corpus stage's JSON
                        artifact (default BENCH_stream.json).
     BENCH_STREAM_SMALL small corpus size for the stream stage (default 1000).
     BENCH_STREAM_LARGE large corpus size for the stream stage (default
                        100000; the stage proves throughput does not degrade
                        with corpus size, i.e. streaming is O(1)-memory and
                        O(n)-time).
     BENCH_STREAM_JOBS  worker count for the stream stage (default 4).
     BENCH_HYBRID_OUT   where to write the learned-portfolio stage's JSON
                        artifact (default BENCH_hybrid.json). *)

open Bechamel
open Toolkit
module S = Specrepair

let sample_size =
  match Sys.getenv_opt "BENCH_SAMPLE" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let () =
  Printf.printf
    "== specrepair bench: study on %d variant(s) per domain ==\n%!"
    sample_size

let variants = S.Benchmarks.Generate.sample ~per_domain:sample_size ()

let results = S.Eval.Study.run variants

(* {2 Artifact regeneration (the paper's tables and figures)} *)

let () =
  print_endline (S.Eval.Tables.table1 results);
  print_endline (S.Eval.Tables.fig2 results);
  print_endline (S.Eval.Tables.fig3 results);
  print_endline (S.Eval.Tables.table2 results);
  print_endline (S.Eval.Tables.summary results)

(* {2 Ablation study (design choices of the multi-round pipeline)} *)

let () =
  let tasks = List.map S.Benchmarks.Generate.to_task variants in
  let count f = List.length (List.filter f tasks) in
  let full =
    count (fun t ->
        (S.Llm.Multi_round.repair t S.Llm.Multi_round.No_feedback).repaired)
  in
  let no_hc =
    count (fun t ->
        (S.Llm.Multi_round.repair ~hill_climb:false t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let no_mc =
    count (fun t ->
        (S.Llm.Multi_round.repair ~mental_check:false t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let portfolio =
    count (fun t -> (fst (S.Eval.Portfolio.repair t)).repaired)
  in
  let weaker_model =
    count (fun t ->
        (S.Llm.Multi_round.repair ~profile:S.Llm.Model.gpt35 t
           S.Llm.Multi_round.No_feedback)
          .repaired)
  in
  let n = List.length tasks in
  Printf.printf
    "ABLATION (Multi-Round_None on %d sampled variants)\n\n\
    \  full pipeline:        %d/%d\n\
    \  without hill-climb:   %d/%d\n\
    \  without mental check: %d/%d\n\
    \  portfolio (ATR->MR):  %d/%d\n\
    \  gpt-3.5 profile:      %d/%d\n\n%!"
    n full n no_hc n no_mc n portfolio n weaker_model n

(* {2 Oracle stages: incremental vs fresh candidate checking}

   A repair-shaped workload: every candidate is a faulty single- or
   double-edit variant of a domain's ground truth, and the loop asks the
   property oracle about each one — the inner loop of ATR, BeAFix, and
   ICEBAR.  The fresh stage rebuilds a solver and retranslates the spec on
   every query; the incremental stage shares one oracle session per domain
   (activation literals, learned clauses, verdict cache).  Each candidate
   is queried twice, as repair loops do (once to score, once to
   re-verify), and both stages must agree on every verdict. *)

let oracle_workload =
  let domains = List.filteri (fun i _ -> i < 3) S.Benchmarks.Domains.all in
  List.map
    (fun d ->
      let candidates =
        List.filter_map
          (fun index ->
            match S.Benchmarks.Fault.inject ~seed:7 d ~index with
            | inj -> (
                match S.Alloy.Typecheck.check_result inj.faulty with
                | Ok env -> Some env
                | Error _ -> None)
            | exception Failure _ -> None)
          (List.init 8 Fun.id)
      in
      (d, candidates))
    domains

let check_workload ~mk_check () =
  List.fold_left
    (fun acc (d, candidates) ->
      let check = mk_check d in
      List.fold_left
        (fun acc env ->
          let p1 = check env in
          let p2 = check env in
          acc + (if p1 then 1 else 0) + if p2 then 1 else 0)
        acc candidates)
    0 oracle_workload

(* the fresh stage rebuilds everything per query: a throwaway session (and
   thus a throwaway oracle) each time *)
let fresh_check env =
  S.Repair.Common.oracle_passes (S.Repair.Session.create env) env

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let () =
  let n_candidates =
    List.fold_left (fun n (_, cs) -> n + List.length cs) 0 oracle_workload
  in
  let fresh_passes, fresh_ms =
    time_ms (fun () -> check_workload ~mk_check:(fun _ -> fresh_check) ())
  in
  let oracles = ref [] in
  let inc_passes, incremental_ms =
    time_ms (fun () ->
        check_workload
          ~mk_check:(fun d ->
            let env = S.Benchmarks.Domains.env d in
            let o = S.Analyzer.Oracle.create env in
            oracles := o :: !oracles;
            let session = S.Repair.Session.create ~oracle:o env in
            fun candidate -> S.Repair.Common.oracle_passes session candidate)
          ())
  in
  if fresh_passes <> inc_passes then
    failwith
      (Printf.sprintf
         "oracle stages disagree: fresh says %d passing, incremental %d"
         fresh_passes inc_passes);
  let speedup = fresh_ms /. incremental_ms in
  let stats =
    List.fold_left
      (fun (acc : S.Analyzer.Oracle.stats) o ->
        let s = S.Analyzer.Oracle.stats o in
        {
          S.Analyzer.Oracle.verdict_hits = acc.verdict_hits + s.verdict_hits;
          verdict_misses = acc.verdict_misses + s.verdict_misses;
          instance_hits = acc.instance_hits + s.instance_hits;
          instance_misses = acc.instance_misses + s.instance_misses;
          fallback_queries = acc.fallback_queries + s.fallback_queries;
          formulas_translated = acc.formulas_translated + s.formulas_translated;
          formulas_reused = acc.formulas_reused + s.formulas_reused;
          contexts = acc.contexts + s.contexts;
          certified = acc.certified + s.certified;
          certificate_failures =
            acc.certificate_failures + s.certificate_failures;
        })
      {
        S.Analyzer.Oracle.verdict_hits = 0;
        verdict_misses = 0;
        instance_hits = 0;
        instance_misses = 0;
        fallback_queries = 0;
        formulas_translated = 0;
        formulas_reused = 0;
        contexts = 0;
        certified = 0;
        certificate_failures = 0;
      }
      !oracles
  in
  Printf.printf
    "ORACLE (%d candidates over %d domains, 2 full property checks each)\n\n\
    \  oracle-fresh:       %8.1f ms\n\
    \  oracle-incremental: %8.1f ms\n\
    \  speedup:            %8.2fx\n\
    \  verdict cache:      %d hits / %d solved\n\
    \  translations:       %d fresh / %d reused (%d contexts)\n\n%!"
    n_candidates (List.length oracle_workload) fresh_ms incremental_ms speedup
    stats.verdict_hits stats.verdict_misses stats.formulas_translated
    stats.formulas_reused stats.contexts;
  let json =
    Printf.sprintf
      "{\n\
      \  \"sample\": %d,\n\
      \  \"domains\": %d,\n\
      \  \"candidates\": %d,\n\
      \  \"fresh_ms\": %.3f,\n\
      \  \"incremental_ms\": %.3f,\n\
      \  \"speedup\": %.3f,\n\
      \  \"verdict_hits\": %d,\n\
      \  \"verdict_misses\": %d,\n\
      \  \"instance_hits\": %d,\n\
      \  \"instance_misses\": %d,\n\
      \  \"fallback_queries\": %d,\n\
      \  \"formulas_translated\": %d,\n\
      \  \"formulas_reused\": %d,\n\
      \  \"contexts\": %d\n\
       }\n"
      sample_size
      (List.length oracle_workload)
      n_candidates fresh_ms incremental_ms speedup stats.verdict_hits
      stats.verdict_misses stats.instance_hits stats.instance_misses
      stats.fallback_queries stats.formulas_translated stats.formulas_reused
      stats.contexts
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_ORACLE_OUT") ~default:"BENCH_oracle.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "oracle artifact written to %s\n\n%!" path

(* {2 Proof stage: certification overhead}

   The same candidate-checking workload as the oracle stage, once with a
   plain incremental oracle and once with `~certify:true`, where every
   UNSAT verdict is cross-checked by the independent DRUP checker.  Both
   runs must agree on every verdict, every certificate must be accepted,
   and the measured ratio is the price of auditing a study run.  A
   SAT-level microbenchmark (a pigeonhole instance) separates the cost of
   logging from the cost of checking. *)

let () =
  let plain_passes, plain_ms =
    time_ms (fun () ->
        check_workload
          ~mk_check:(fun d ->
            let env = S.Benchmarks.Domains.env d in
            let session = S.Repair.Session.create env in
            fun candidate -> S.Repair.Common.oracle_passes session candidate)
          ())
  in
  let cert_oracles = ref [] in
  let cert_passes, cert_ms =
    time_ms (fun () ->
        check_workload
          ~mk_check:(fun d ->
            let env = S.Benchmarks.Domains.env d in
            let o = S.Analyzer.Oracle.create ~certify:true env in
            cert_oracles := o :: !cert_oracles;
            let session = S.Repair.Session.create ~oracle:o env in
            fun candidate -> S.Repair.Common.oracle_passes session candidate)
          ())
  in
  if plain_passes <> cert_passes then
    failwith "proof stage: certified verdicts disagree with plain verdicts";
  let certified, cert_failures =
    List.fold_left
      (fun (c, f) o ->
        let s = S.Analyzer.Oracle.stats o in
        (c + s.S.Analyzer.Oracle.certified, f + s.certificate_failures))
      (0, 0) !cert_oracles
  in
  if cert_failures > 0 then
    failwith "proof stage: a certificate was rejected by the checker";
  if certified = 0 then
    failwith "proof stage: no UNSAT verdict was certified";
  (* SAT-level microbenchmark: pigeonhole (n+1 pigeons, n holes) *)
  let cnf = S.Sat.Hard_cnf.pigeonhole 6 in
  let solve ?sink () =
    let s = S.Sat.Solver.create () in
    (match sink with None -> () | Some _ -> S.Sat.Solver.set_proof s sink);
    S.Sat.Dimacs.load_into s cnf;
    if S.Sat.Solver.solve s <> S.Sat.Solver.Unsat then
      failwith "proof stage: pigeonhole instance must be unsat"
  in
  let (), sat_plain_ms = time_ms (fun () -> solve ()) in
  let recorder = S.Sat.Proof.recorder () in
  let (), sat_logged_ms =
    time_ms (fun () ->
        solve ~sink:(S.Sat.Proof.recorder_sink recorder) ())
  in
  let steps = S.Sat.Proof.steps recorder in
  let (), sat_checked_ms =
    time_ms (fun () ->
        match
          S.Sat.Drat.check
            ~premises:(S.Sat.Proof.inputs recorder)
            (List.to_seq steps)
        with
        | Ok () -> ()
        | Error e -> failwith ("proof stage: checker rejected pigeonhole: " ^ e))
  in
  let overhead = cert_ms /. plain_ms in
  Printf.printf
    "PROOF (certified oracle re-run of the workload above)\n\n\
    \  oracle-plain:       %8.1f ms\n\
    \  oracle-certified:   %8.1f ms (overhead %.2fx)\n\
    \  certificates:       %d accepted / %d rejected\n\
    \  pigeonhole(7,6):    %8.1f ms plain, %8.1f ms logged, %8.1f ms checked \
     (%d steps)\n\n%!"
    plain_ms cert_ms overhead certified cert_failures sat_plain_ms
    sat_logged_ms sat_checked_ms (List.length steps);
  let json =
    Printf.sprintf
      "{\n\
      \  \"sample\": %d,\n\
      \  \"domains\": %d,\n\
      \  \"candidates\": %d,\n\
      \  \"plain_ms\": %.3f,\n\
      \  \"certified_ms\": %.3f,\n\
      \  \"overhead\": %.3f,\n\
      \  \"verdicts_match\": true,\n\
      \  \"certified\": %d,\n\
      \  \"certificate_failures\": %d,\n\
      \  \"sat_plain_ms\": %.3f,\n\
      \  \"sat_logged_ms\": %.3f,\n\
      \  \"sat_checked_ms\": %.3f,\n\
      \  \"proof_steps\": %d\n\
       }\n"
      sample_size
      (List.length oracle_workload)
      (List.fold_left (fun n (_, cs) -> n + List.length cs) 0 oracle_workload)
      plain_ms cert_ms overhead certified cert_failures sat_plain_ms
      sat_logged_ms sat_checked_ms (List.length steps)
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_PROOF_OUT") ~default:"BENCH_proof.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "proof artifact written to %s\n\n%!" path

(* {2 SAT stage: inprocessing and portfolio racing on hard instances}

   Hard CNF families — pigeonhole, pigeonhole with injected clause
   redundancy (the shape of Tseitin-translated specifications), and random
   3-SAT at the satisfiability phase transition — solved three ways: a
   plain solver, the proof-preserving inprocessing solver
   (`Sat.Simplify.solve`), and a 4-worker racing portfolio
   (`Sat.Portfolio.solve`).  All three must agree on every verdict, and
   every UNSAT instance is re-solved under a proof recorder whose DRUP
   certificate the independent checker must accept — the speedups are only
   worth reporting if the proofs still check. *)

let () =
  let families =
    [
      ("php", [ S.Sat.Hard_cnf.pigeonhole 7 ]);
      (* heavy clause-level redundancy: the shape subsumption exists for *)
      ( "php-redundant",
        [
          S.Sat.Hard_cnf.with_redundancy ~seed:3 ~copies:64
            (S.Sat.Hard_cnf.pigeonhole 7);
        ] );
      (* mixed verdicts near the phase transition, kept small *)
      ( "3sat",
        List.map
          (fun seed ->
            S.Sat.Hard_cnf.random_3sat ~seed ~num_vars:120 ~num_clauses:511)
          [ 11; 12; 13 ] );
      (* a heavy-tail satisfiable instance just below the transition: the
         default configuration grinds for many seconds while a scrambled
         worker finds a model almost immediately — the case racing
         diversified configurations exists for (the speedup is algorithmic,
         so it survives even a single-core host) *)
      ( "3sat-tail",
        [ S.Sat.Hard_cnf.random_3sat ~seed:17 ~num_vars:300 ~num_clauses:1250 ]
      );
    ]
  in
  let plain_solve cnf =
    let s = S.Sat.Solver.create () in
    S.Sat.Dimacs.load_into s cnf;
    let r = S.Sat.Solver.solve s in
    if r = S.Sat.Solver.Unknown then
      failwith "sat stage: unbounded solve answered unknown";
    r
  in
  let verdict_name = function
    | S.Sat.Solver.Sat -> "sat"
    | S.Sat.Solver.Unsat -> "unsat"
    | S.Sat.Solver.Unknown -> "unknown"
  in
  let rows =
    List.map
      (fun (name, cnfs) ->
        let plain, plain_ms = time_ms (fun () -> List.map plain_solve cnfs) in
        let simped, simplify_ms =
          time_ms (fun () ->
              List.map
                (fun c -> (S.Sat.Simplify.solve c).S.Sat.Simplify.result)
                cnfs)
        in
        let raced, portfolio_ms =
          time_ms (fun () ->
              List.map
                (fun c ->
                  (S.Sat.Portfolio.solve ~jobs:4 c).S.Sat.Portfolio.result)
                cnfs)
        in
        if simped <> plain then
          failwith
            (Printf.sprintf
               "sat stage: simplified verdicts disagree on family %s" name);
        if raced <> plain then
          failwith
            (Printf.sprintf
               "sat stage: portfolio verdicts disagree on family %s" name);
        let certified =
          List.fold_left2
            (fun acc cnf v ->
              if v <> S.Sat.Solver.Unsat then acc
              else begin
                let recorder = S.Sat.Proof.recorder () in
                let sink = S.Sat.Proof.recorder_sink recorder in
                List.iter
                  (fun c -> sink (S.Sat.Proof.Input (Array.of_list c)))
                  cnf.S.Sat.Dimacs.clauses;
                let r = S.Sat.Simplify.solve ~proof:sink cnf in
                if r.S.Sat.Simplify.result <> S.Sat.Solver.Unsat then
                  failwith "sat stage: certifying re-solve changed a verdict";
                (match
                   S.Sat.Drat.check
                     ~premises:(S.Sat.Proof.inputs recorder)
                     (List.to_seq (S.Sat.Proof.steps recorder))
                 with
                | Ok () -> ()
                | Error e ->
                    failwith
                      (Printf.sprintf
                         "sat stage: checker rejected a %s certificate: %s"
                         name e));
                acc + 1
              end)
            0 cnfs plain
        in
        let verdicts = String.concat "+" (List.map verdict_name plain) in
        (name, List.length cnfs, verdicts, plain_ms, simplify_ms, portfolio_ms,
         certified))
      families
  in
  let best f = List.fold_left (fun acc r -> max acc (f r)) 0. rows in
  let simplify_speedup (_, _, _, p, s, _, _) = p /. s in
  let portfolio_speedup (_, _, _, p, _, r, _) = p /. r in
  let total_certified =
    List.fold_left (fun n (_, _, _, _, _, _, c) -> n + c) 0 rows
  in
  print_endline
    "SAT (hard instances: plain vs inprocessing vs 4-worker portfolio)\n";
  List.iter
    (fun ((name, n, verdicts, plain_ms, simplify_ms, portfolio_ms, certified)
          as row) ->
      Printf.printf
        "  %-14s %d instance(s), %-15s plain %8.1f ms | simplify %8.1f ms \
         (%.2fx) | portfolio %8.1f ms (%.2fx) | %d certified\n"
        name n verdicts plain_ms simplify_ms (simplify_speedup row)
        portfolio_ms (portfolio_speedup row) certified)
    rows;
  Printf.printf
    "\n  best simplify speedup:  %.2fx\n  best portfolio speedup: %.2fx\n\n%!"
    (best simplify_speedup) (best portfolio_speedup);
  let family_json ((name, n, verdicts, plain_ms, simplify_ms, portfolio_ms,
                    certified) as row) =
    Printf.sprintf
      "    {\n\
      \      \"name\": \"%s\",\n\
      \      \"instances\": %d,\n\
      \      \"verdicts\": \"%s\",\n\
      \      \"plain_ms\": %.3f,\n\
      \      \"simplify_ms\": %.3f,\n\
      \      \"portfolio_ms\": %.3f,\n\
      \      \"simplify_speedup\": %.3f,\n\
      \      \"portfolio_speedup\": %.3f,\n\
      \      \"certified_unsat\": %d\n\
      \    }"
      name n verdicts plain_ms simplify_ms portfolio_ms (simplify_speedup row)
      (portfolio_speedup row) certified
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"families\": [\n\
       %s\n\
      \  ],\n\
      \  \"best_simplify_speedup\": %.3f,\n\
      \  \"best_portfolio_speedup\": %.3f,\n\
      \  \"verdicts_agree\": true,\n\
      \  \"certified_unsat\": %d,\n\
      \  \"certificate_failures\": 0\n\
       }\n"
      (String.concat ",\n" (List.map family_json rows))
      (best simplify_speedup) (best portfolio_speedup) total_certified
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_SAT_OUT") ~default:"BENCH_sat.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "sat artifact written to %s\n\n%!" path

(* {2 Parallel stages: static partition vs dynamic work-stealing scheduler}

   The same study rows fanned out over the same number of forked workers,
   once through the legacy static round-robin partition (one fixed slice
   per worker, no fault tolerance) and once through the chunked
   work-stealing scheduler behind `Study.run_parallel`.  Both runs must
   agree with the sequential rows computed above on every column except
   the wall clock. *)

let () =
  let jobs =
    match Sys.getenv_opt "BENCH_JOBS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | _ -> 4)
    | None -> 4
  in
  let static_rows, static_ms =
    time_ms (fun () -> S.Eval.Study.run_parallel_static ~jobs variants)
  in
  let sched_stats = ref (S.Engine.Telemetry.Scheduler.create ()) in
  let dynamic_rows, dynamic_ms =
    time_ms (fun () ->
        S.Eval.Study.run_parallel ~jobs
          ~on_stats:(fun s -> sched_stats := s)
          variants)
  in
  let stats = !sched_stats in
  (* compare in CSV space: parallel rows round-trip through the CSV's
     %.6f formatting, so raw floats would differ in ulps *)
  let canon rows =
    S.Eval.Study.to_csv ~timings:false
      (List.sort
         (fun (a : S.Eval.Study.spec_result) b ->
           compare (a.variant_id, a.technique) (b.variant_id, b.technique))
         rows)
  in
  let reference = canon (S.Eval.Study.of_csv (S.Eval.Study.to_csv results)) in
  if canon static_rows <> reference then
    failwith "parallel stage: static rows disagree with the sequential run";
  if canon dynamic_rows <> reference then
    failwith "parallel stage: dynamic rows disagree with the sequential run";
  let ratio = static_ms /. dynamic_ms in
  Printf.printf
    "PARALLEL (%d rows over %d workers, static partition vs dynamic scheduler)\n\n\
    \  static partition:   %8.1f ms\n\
    \  dynamic scheduler:  %8.1f ms (static/dynamic %.2fx)\n\
    \  chunks:             %d dispatched, %d completed\n\
    \  retries:            %d (workers lost %d, heartbeat kills %d)\n\n%!"
    (List.length dynamic_rows) jobs static_ms dynamic_ms ratio
    stats.chunks_dispatched stats.chunks_completed stats.retries
    stats.workers_lost stats.heartbeat_kills;
  let json =
    Printf.sprintf
      "{\n\
      \  \"sample\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"rows\": %d,\n\
      \  \"static_ms\": %.3f,\n\
      \  \"dynamic_ms\": %.3f,\n\
      \  \"static_over_dynamic\": %.3f,\n\
      \  \"rows_match_sequential\": true,\n\
      \  \"chunks_dispatched\": %d,\n\
      \  \"chunks_completed\": %d,\n\
      \  \"rows_completed\": %d,\n\
      \  \"retries\": %d,\n\
      \  \"workers_spawned\": %d,\n\
      \  \"workers_lost\": %d,\n\
      \  \"heartbeat_kills\": %d\n\
       }\n"
      sample_size jobs
      (List.length dynamic_rows)
      static_ms dynamic_ms ratio stats.chunks_dispatched stats.chunks_completed
      stats.rows_completed stats.retries stats.workers_spawned
      stats.workers_lost stats.heartbeat_kills
  in
  let path =
    Option.value
      (Sys.getenv_opt "BENCH_PARALLEL_OUT")
      ~default:"BENCH_parallel.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "parallel artifact written to %s\n\n%!" path

(* {2 Stream stage: checkpointed corpus streaming, small vs large}

   The million-spec claim: because study rows are generated on demand and
   results land in sharded files, throughput must not degrade with corpus
   size — a 100k-row run streams at the same rows/s as a 1k-row run, and
   the merging parent never holds more than one shard in memory.  The
   workload is corpus derivation over the fuzz-generated source (the same
   producer the STREAM fuzz target cross-checks), pushed through the real
   checkpoint/resume scheduler; the verdicts CI can gate on are
   deterministic (row counts, manifest completeness), the throughput
   ratio is for the committed artifact. *)

let () =
  let getenv_int name default =
    match Sys.getenv_opt name with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
    | None -> default
  in
  let small = getenv_int "BENCH_STREAM_SMALL" 1_000 in
  let large = getenv_int "BENCH_STREAM_LARGE" 100_000 in
  let jobs = getenv_int "BENCH_STREAM_JOBS" 4 in
  let seed = 42 in
  let source = Specrepair_fuzz.Stream_source.fuzzed in
  let derive ~emit:_ i =
    let v = S.Eval.Corpus_stream.variant ~source ~seed i in
    Printf.sprintf "%s,%s" v.S.Benchmarks.Generate.id
      (Digest.to_hex
         (Digest.string
            (S.Alloy.Pretty.spec_to_string v.injected.S.Benchmarks.Fault.faulty)))
  in
  let with_tmpdir k =
    let dir = Filename.temp_file "bench_stream_" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o755;
    let rec rm p =
      if Sys.is_directory p then (
        Array.iter (fun f -> rm (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p)
      else Sys.remove p
    in
    Fun.protect ~finally:(fun () -> if Sys.file_exists dir then rm dir)
      (fun () -> k dir)
  in
  let run total =
    with_tmpdir (fun dir ->
        let fingerprint =
          S.Eval.Corpus_stream.fingerprint ~source ~seed ~total
            ~options:[ "workload=derive" ]
        in
        let _, ms =
          time_ms (fun () ->
              S.Eval.Scheduler.map_checkpointed ~jobs ~dir ~fingerprint
                ~f:derive total)
        in
        if not (S.Eval.Manifest.is_complete (S.Eval.Manifest.load ~dir)) then
          failwith "stream stage: manifest incomplete after a finished run";
        (* the lazy merge: count rows without ever materializing them *)
        let rows = S.Eval.Scheduler.fold_shards ~dir (fun n _ _ -> n + 1) 0 in
        if rows <> total then
          failwith
            (Printf.sprintf "stream stage: merged %d rows, expected %d" rows
               total);
        ms)
  in
  let small_ms = run small in
  let large_ms = run large in
  let heap_mb st =
    float_of_int (st.Gc.top_heap_words * Sys.word_size / 8) /. 1_048_576.
  in
  let peak_mb = heap_mb (Gc.quick_stat ()) in
  let small_rate = float_of_int small /. small_ms *. 1000. in
  let large_rate = float_of_int large /. large_ms *. 1000. in
  let ratio = large_rate /. small_rate in
  Printf.printf
    "STREAM (generate-on-demand corpus through the checkpointed scheduler, \
     %d workers)\n\n\
    \  %8d rows: %8.1f ms  (%8.1f rows/s)\n\
    \  %8d rows: %8.1f ms  (%8.1f rows/s)\n\
    \  large/small throughput: %.3fx (flat = no per-row cost growth)\n\
    \  parent peak heap:       %.1f MB (shards merged lazily)\n\n%!"
    jobs small small_ms small_rate large large_ms large_rate ratio peak_mb;
  let json =
    Printf.sprintf
      "{\n\
      \  \"jobs\": %d,\n\
      \  \"small_rows\": %d,\n\
      \  \"large_rows\": %d,\n\
      \  \"small_ms\": %.3f,\n\
      \  \"large_ms\": %.3f,\n\
      \  \"small_rows_per_s\": %.1f,\n\
      \  \"large_rows_per_s\": %.1f,\n\
      \  \"large_over_small\": %.3f,\n\
      \  \"rows_match\": true,\n\
      \  \"manifest_complete\": true,\n\
      \  \"parent_peak_heap_mb\": %.1f\n\
       }\n"
      jobs small large small_ms large_ms small_rate large_rate ratio peak_mb
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_STREAM_OUT") ~default:"BENCH_stream.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "stream artifact written to %s\n\n%!" path

(* {2 Serve stage: cold vs warm requests through the daemon}

   A daemon is forked onto a private Unix socket and the same evaluate
   requests are sent twice over one persistent connection: a cold pass
   (every request builds its warm per-worker session) and a warm pass
   repeating each request several times (every repeat is answered from
   the worker's digest-keyed caches).  Warm replies must be
   byte-identical to cold ones apart from the [warm] flag, and the
   daemon's own counters must account for every hit — those counter
   identities are what CI gates on; the wall-clock speedup is reported
   for off-CI runs. *)

let () =
  let repeats =
    match Sys.getenv_opt "BENCH_SERVE_REPEATS" with
    | Some s -> (
        match int_of_string_opt s with Some n when n > 0 -> n | _ -> 5)
    | None -> 5
  in
  let sources =
    variants
    |> List.filteri (fun i _ -> i < 4)
    |> List.map (fun (v : S.Benchmarks.Generate.variant) ->
           (v.id, S.Alloy.Pretty.source v.injected.faulty))
  in
  let sock = Printf.sprintf "/tmp/specrepair_bench_%d.sock" (Unix.getpid ()) in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  let daemon =
    match Unix.fork () with
    | 0 ->
        (* the daemon's chatter must not interleave with the bench report *)
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        Unix.dup2 devnull Unix.stdout;
        Unix.close devnull;
        (match
           S.Serve.Daemon.run
             {
               S.Serve.Daemon.default_config with
               socket = Some sock;
               workers = 2;
             }
         with
        | () -> Unix._exit 0
        | exception _ -> Unix._exit 2)
    | pid -> pid
  in
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then failwith "serve stage: daemon socket never appeared"
    else begin
      Unix.sleepf 0.05;
      await (n - 1)
    end
  in
  await 200;
  let conn =
    match S.Serve.Client.connect (S.Serve.Client.Unix_sock sock) with
    | Ok c -> c
    | Error m -> failwith ("serve stage: " ^ m)
  in
  let ask line =
    match S.Serve.Client.roundtrip conn line with
    | Ok r -> r
    | Error m -> failwith ("serve stage: " ^ m)
  in
  let request id source =
    S.Serve.Json.(
      to_string
        (Obj
           [
             ("id", Str id);
             ("method", Str "evaluate");
             ("params", Obj [ ("source", Str source); ("file", Str id) ]);
           ]))
  in
  (* compare replies with the warmth flag neutralised *)
  let strip_warm s =
    let hot = {|"warm":true|} and cold = {|"warm":false|} in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    let n = String.length s in
    let matches p =
      let k = String.length p in
      !i + k <= n && String.sub s !i k = p
    in
    while !i < n do
      if matches hot || matches cold then begin
        Buffer.add_string buf {|"warm":_|};
        i := !i + String.length (if matches hot then hot else cold)
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let cold_replies, cold_ms =
    time_ms (fun () -> List.map (fun (id, src) -> ask (request id src)) sources)
  in
  let warm_replies, warm_ms =
    time_ms (fun () ->
        List.concat_map
          (fun (id, src) -> List.init repeats (fun _ -> ask (request id src)))
          sources)
  in
  let requests_cold = List.length sources in
  let requests_warm = requests_cold * repeats in
  let contains sub s =
    let k = String.length sub and n = String.length s in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun r ->
      if not (S.Serve.Protocol.reply_is_ok r) then
        failwith ("serve stage: request failed: " ^ r))
    (cold_replies @ warm_replies);
  if not (List.for_all (contains {|"warm":true|}) warm_replies) then
    failwith "serve stage: a warm repeat was not answered from warm state";
  let replies_match =
    List.for_all2
      (fun (id, _) cold ->
        List.filter (contains ("\"id\":\"" ^ id ^ "\"")) warm_replies
        |> List.for_all (fun w -> strip_warm w = strip_warm cold))
      sources cold_replies
  in
  if not replies_match then
    failwith "serve stage: warm replies differ from cold ones";
  let status =
    ask
      S.Serve.Json.(
        to_string
          (Obj [ ("id", Str "st"); ("method", Str "status"); ("params", Obj []) ]))
  in
  let counter name =
    match S.Serve.Json.parse status with
    | Ok j -> (
        match Option.bind (S.Serve.Json.member "result" j)
                (S.Serve.Json.mem_int name)
        with
        | Some v -> v
        | None -> failwith ("serve stage: status lacks " ^ name))
    | Error _ -> failwith "serve stage: status reply is not JSON"
  in
  let cache_hits = counter "cache_hits" in
  let cache_misses = counter "cache_misses" in
  let worker_respawns = counter "worker_respawns" in
  let queue_high_water = counter "queue_high_water" in
  if cache_hits <> requests_warm then
    failwith
      (Printf.sprintf "serve stage: expected %d cache hits, daemon counted %d"
         requests_warm cache_hits);
  if cache_misses <> requests_cold then
    failwith
      (Printf.sprintf
         "serve stage: expected %d cache misses, daemon counted %d"
         requests_cold cache_misses);
  if worker_respawns <> 0 then
    failwith "serve stage: a worker was lost during a clean benchmark";
  S.Serve.Client.close conn;
  Unix.kill daemon Sys.sigterm;
  let clean_shutdown =
    match Unix.waitpid [] daemon with
    | _, Unix.WEXITED 0 -> true
    | _ -> false
  in
  if not clean_shutdown then failwith "serve stage: daemon did not exit 0";
  if Sys.file_exists sock then
    failwith "serve stage: socket file survived shutdown";
  let cold_rps = float_of_int requests_cold /. (cold_ms /. 1000.) in
  let warm_rps = float_of_int requests_warm /. (warm_ms /. 1000.) in
  let warm_speedup = warm_rps /. cold_rps in
  Printf.printf
    "SERVE (%d specs x %d warm repeats over a Unix socket, 2 workers)\n\n\
    \  cold pass:   %8.1f ms  (%.1f requests/s)\n\
    \  warm pass:   %8.1f ms  (%.1f requests/s, %.2fx)\n\
    \  counters:    %d hits, %d misses, %d respawns, queue high-water %d\n\
    \  shutdown:    clean (exit 0, socket unlinked)\n\n%!"
    requests_cold repeats cold_ms cold_rps warm_ms warm_rps warm_speedup
    cache_hits cache_misses worker_respawns queue_high_water;
  let json =
    Printf.sprintf
      "{\n\
      \  \"specs\": %d,\n\
      \  \"repeats\": %d,\n\
      \  \"requests_cold\": %d,\n\
      \  \"requests_warm\": %d,\n\
      \  \"cold_ms\": %.3f,\n\
      \  \"warm_ms\": %.3f,\n\
      \  \"cold_rps\": %.3f,\n\
      \  \"warm_rps\": %.3f,\n\
      \  \"warm_speedup\": %.3f,\n\
      \  \"replies_match\": %b,\n\
      \  \"cache_hits\": %d,\n\
      \  \"cache_misses\": %d,\n\
      \  \"worker_respawns\": %d,\n\
      \  \"queue_high_water\": %d,\n\
      \  \"clean_shutdown\": %b\n\
       }\n"
      requests_cold repeats requests_cold requests_warm cold_ms warm_ms
      cold_rps warm_rps warm_speedup replies_match cache_hits cache_misses
      worker_respawns queue_high_water clean_shutdown
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_SERVE_OUT") ~default:"BENCH_serve.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "serve artifact written to %s\n\n%!" path

(* {2 Hybrid stage: telemetry-learned portfolio vs the static pipeline}

   The model-panel extension of the paper's union analysis, made
   operational: a warmup study (the two bare-task traditional engines plus
   one Multi-Round/Auto run per panel profile) is mined into
   per-(defect-class × technique) statistics, then the same
   heterogeneous-defect task battery is repaired twice — through the
   static ATR→Multi-Round pipeline and through the learned ordering
   racing the top of the expected-value-per-millisecond ranking.  The
   deterministic gates CI can rely on: the panel union strictly exceeds
   every single profile's coverage, the battery spans several defect
   classes, mined statistics cover it, and a cold start (no statistics)
   reproduces the static pipeline bit-identically.  The wall-clock
   time-to-first-repair speedup is for the committed artifact (gated
   off-CI by tools/bench_smoke.sh). *)

let () =
  (* The union analysis needs at least two variants per domain: at one,
     the strongest profile alone can tie the union and the strictly-
     exceeds gate is unpassable by construction, so this stage floors its
     own battery at 2 regardless of BENCH_SAMPLE. *)
  let hybrid_sample = max 2 sample_size in
  let hybrid_variants =
    if hybrid_sample = sample_size then variants
    else S.Benchmarks.Generate.sample ~per_domain:hybrid_sample ()
  in
  let panel_techniques =
    List.map
      (fun p -> S.Eval.Technique.Multi (S.Llm.Multi_round.Auto, p))
      S.Llm.Model.panel
  in
  let warm_techniques =
    S.Eval.Technique.ATR :: S.Eval.Technique.BeAFix :: panel_techniques
  in
  let warm_rows, mining_ms =
    time_ms (fun () ->
        S.Eval.Study.run ~techniques:warm_techniques hybrid_variants)
  in
  let stats = S.Eval.Learned.empty () in
  S.Eval.Learned.add_rows stats warm_rows;
  if S.Eval.Learned.is_empty stats then
    failwith "hybrid stage: mining the warmup study produced no statistics";
  let mined_cells = List.length (S.Eval.Learned.cells stats) in
  (* the panel union analysis (Table III's data) over the warmup rows *)
  let per_profile, union = S.Eval.Tables.panel_coverage warm_rows in
  let union_n = List.length union in
  List.iter
    (fun (name, _techs, repaired) ->
      if List.length repaired >= union_n then
        failwith
          (Printf.sprintf
             "hybrid stage: panel union (%d) does not strictly exceed \
              profile %s (%d)"
             union_n name (List.length repaired)))
    per_profile;
  let tasks = List.map S.Benchmarks.Generate.to_task hybrid_variants in
  let n_tasks = List.length tasks in
  let classes =
    List.sort_uniq compare
      (List.map S.Eval.Learned.defect_class_of_task tasks)
  in
  if List.length classes < 2 then
    failwith "hybrid stage: the task battery is not defect-heterogeneous";
  let planned =
    List.length
      (List.filter
         (fun t -> (S.Eval.Portfolio.plan ~stats t).S.Eval.Portfolio.learned)
         tasks)
  in
  if planned = 0 then
    failwith "hybrid stage: no task found statistics for its defect class";
  (* a cold start (no statistics) must reproduce the static pipeline
     bit-identically — the fallback contract repair_learned documents *)
  (match tasks with
  | [] -> ()
  | t :: _ ->
      let plain = fst (S.Eval.Portfolio.repair t) in
      let cold = (S.Eval.Portfolio.repair_learned t).S.Eval.Portfolio.result in
      if plain <> cold then
        failwith
          "hybrid stage: cold-start learned repair diverges from the static \
           pipeline");
  (* time to first repair over the whole battery: each run stops at its
     first success, so the battery wall clock is the summed metric *)
  let static_results, static_ms =
    time_ms (fun () ->
        List.map (fun t -> fst (S.Eval.Portfolio.repair t)) tasks)
  in
  let learned_results, learned_ms =
    time_ms (fun () ->
        List.map
          (fun t ->
            (S.Eval.Portfolio.repair_learned ~stats t).S.Eval.Portfolio.result)
          tasks)
  in
  let repaired rs =
    List.length
      (List.filter (fun (r : S.Repair.Common.result) -> r.repaired) rs)
  in
  let static_repairs = repaired static_results in
  let learned_repairs = repaired learned_results in
  if learned_repairs = 0 then
    failwith "hybrid stage: the learned portfolio repaired nothing";
  let speedup = static_ms /. learned_ms in
  Printf.printf
    "HYBRID (learned portfolio vs static pipeline on %d tasks over %d defect \
     classes)\n\n\
    \  warmup mining:      %8.1f ms (%d cells)\n\
    \  static pipeline:    %8.1f ms (%d/%d repaired)\n\
    \  learned ordering:   %8.1f ms (%d/%d repaired, %.2fx faster to first \
     repair)\n\
    \  learned plans:      %d/%d tasks had statistics for their class\n\
    \  panel union:        %d variants (strictly exceeds every profile)\n\n%!"
    n_tasks (List.length classes) mining_ms mined_cells static_ms
    static_repairs n_tasks learned_ms learned_repairs n_tasks speedup planned
    n_tasks union_n;
  let profile_json (name, techs, repaired) =
    Printf.sprintf
      "    {\n\
      \      \"name\": \"%s\",\n\
      \      \"techniques\": %d,\n\
      \      \"repairs\": %d,\n\
      \      \"rate\": %.4f\n\
      \    }"
      name techs (List.length repaired)
      (float_of_int (List.length repaired) /. float_of_int n_tasks)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"sample\": %d,\n\
      \  \"tasks\": %d,\n\
      \  \"defect_classes\": %d,\n\
      \  \"mined_cells\": %d,\n\
      \  \"mining_ms\": %.3f,\n\
      \  \"profiles\": [\n\
       %s\n\
      \  ],\n\
      \  \"union_repairs\": %d,\n\
      \  \"union_strictly_exceeds\": true,\n\
      \  \"planned_tasks\": %d,\n\
      \  \"coldstart_identical\": true,\n\
      \  \"static_ms\": %.3f,\n\
      \  \"learned_ms\": %.3f,\n\
      \  \"static_repairs\": %d,\n\
      \  \"learned_repairs\": %d,\n\
      \  \"speedup\": %.3f\n\
       }\n"
      hybrid_sample n_tasks (List.length classes) mined_cells mining_ms
      (String.concat ",\n" (List.map profile_json per_profile))
      union_n planned static_ms learned_ms static_repairs learned_repairs
      speedup
  in
  let path =
    Option.value (Sys.getenv_opt "BENCH_HYBRID_OUT") ~default:"BENCH_hybrid.json"
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "hybrid artifact written to %s\n\n%!" path

(* {2 Timed benchmarks} *)

(* inputs for the substrate benches *)
let graph_env =
  lazy
    (S.Alloy.Typecheck.check
       (S.Alloy.Parser.parse
          {|
sig Node { edges: set Node }
fact Acyclic { no n: Node | n in n.^edges }
assert NoLoop { all n: Node | n not in n.^edges }
check NoLoop for 3
run { some edges } for 3
|}))

let faulty_env =
  lazy
    (S.Alloy.Typecheck.check
       (S.Alloy.Parser.parse
          {|
sig Node { edges: set Node }
fact Acyclic { some n: Node | n in n.^edges }
assert NoLoop { all n: Node | n not in n.^edges }
check NoLoop for 3
run { some edges } for 3
|}))

let first_variant = List.hd variants

let bench_tests =
  Test.make_grouped ~name:"specrepair" ~fmt:"%s/%s"
    [
      (* one per paper artifact *)
      Test.make ~name:"table1-rep-counts"
        (Staged.stage (fun () -> S.Eval.Tables.table1 results));
      Test.make ~name:"fig2-similarity-means"
        (Staged.stage (fun () -> S.Eval.Tables.fig2 results));
      Test.make ~name:"fig3-pearson-matrix"
        (Staged.stage (fun () -> S.Eval.Tables.fig3 results));
      Test.make ~name:"table2-hybrid-unions"
        (Staged.stage (fun () -> S.Eval.Tables.table2 results));
      (* substrate: the operations the study spends its time in *)
      Test.make ~name:"analyzer-check"
        (Staged.stage (fun () ->
             S.Analyzer.check_assert (Lazy.force graph_env)
               S.Analyzer.default_scope "NoLoop"));
      (* candidate checking, one domain's worth: per-query solver rebuild
         vs one shared incremental session (created inside the run, so its
         setup cost is charged to the incremental side) *)
      Test.make ~name:"oracle-fresh"
        (Staged.stage (fun () ->
             let d, candidates = List.hd oracle_workload in
             ignore d;
             List.iter (fun env -> ignore (fresh_check env)) candidates));
      Test.make ~name:"oracle-incremental"
        (Staged.stage (fun () ->
             let d, candidates = List.hd oracle_workload in
             let session =
               S.Repair.Session.create (S.Benchmarks.Domains.env d)
             in
             List.iter
               (fun env ->
                 ignore (S.Repair.Common.oracle_passes session env))
               candidates));
      Test.make ~name:"repair-beafix"
        (Staged.stage (fun () -> S.Repair.Beafix.repair (Lazy.force faulty_env)));
      Test.make ~name:"repair-atr"
        (Staged.stage (fun () -> S.Repair.Atr.repair (Lazy.force faulty_env)));
      Test.make ~name:"repair-multi-round"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"metric-rep"
        (Staged.stage (fun () ->
             S.Metrics.Rep.rep ~ground_truth:first_variant.ground_truth
               ~candidate:first_variant.injected.faulty ()));
      Test.make ~name:"metric-token-match"
        (Staged.stage (fun () ->
             S.Metrics.Bleu.token_match
               ~reference:
                 (S.Alloy.Pretty.spec_to_string first_variant.ground_truth)
               ~candidate:
                 (S.Alloy.Pretty.spec_to_string
                    first_variant.injected.faulty)));
      Test.make ~name:"metric-syntax-match"
        (Staged.stage (fun () ->
             S.Metrics.Tree_kernel.syntax_match first_variant.ground_truth
               first_variant.injected.faulty));
      Test.make ~name:"benchmark-inject"
        (Staged.stage (fun () ->
             S.Benchmarks.Fault.inject ~seed:99
               (List.hd S.Benchmarks.Domains.all)
               ~index:0));
      (* ablations of the multi-round design choices (see DESIGN.md) *)
      Test.make ~name:"ablation-mr-no-hill-climb"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair ~hill_climb:false
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"ablation-mr-no-mental-check"
        (Staged.stage (fun () ->
             S.Llm.Multi_round.repair ~mental_check:false
               (S.Benchmarks.Generate.to_task first_variant)
               S.Llm.Multi_round.No_feedback));
      Test.make ~name:"portfolio-hybrid-tool"
        (Staged.stage (fun () ->
             S.Eval.Portfolio.repair
               (S.Benchmarks.Generate.to_task first_variant)));
    ]

let () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances bench_tests in
  let analyzed = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "== timings (monotonic clock, per run) ==";
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) analyzed [] in
  List.iter
    (fun (name, ols_result) ->
      match Analyze.OLS.estimates ols_result with
      | Some (est :: _) ->
          let value, unit_ =
            if est > 1e9 then (est /. 1e9, "s")
            else if est > 1e6 then (est /. 1e6, "ms")
            else if est > 1e3 then (est /. 1e3, "us")
            else (est, "ns")
          in
          Printf.printf "  %-36s %10.2f %s/run\n" name value unit_
      | _ -> Printf.printf "  %-36s (no estimate)\n" name)
    (List.sort compare rows);
  print_endline "\nbench: done"
